package server

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sampleview"
	"sampleview/internal/catalog"
	"sampleview/internal/lsm"
	"sampleview/internal/record"
	"sampleview/internal/shard"
)

// Config tunes the server's admission control and housekeeping. The zero
// value gets sensible defaults from withDefaults.
type Config struct {
	// MaxStreams caps concurrently open streams server-wide. An open-stream
	// request past the cap receives a typed CodeServerStreams rejection
	// (default 256).
	MaxStreams int
	// MaxStreamsPerConn caps open streams per connection; past it the
	// request receives CodeConnStreams (default 16).
	MaxStreamsPerConn int
	// MaxStreamsPerTenant caps open streams per tenant, summed over every
	// connection attributed to that tenant with a set-tenant frame; past it
	// the request receives CodeTenantStreams. Connections that never set a
	// tenant are each their own accounting unit, which preserves the
	// pre-fleet per-connection semantics. Defaults to MaxStreams — the old
	// server-wide flag doubles as the fleet-wide per-tenant default.
	MaxStreamsPerTenant int
	// ReplicaID names this server in a fleet; it travels in replica-info
	// responses so a router can identify and health-check its replicas.
	// Empty outside a fleet.
	ReplicaID string
	// MaxBatch caps records per batch response. Larger client requests are
	// clamped, bounding per-request buffering — backpressure comes from the
	// strict request/response alternation, not from queues (default 4096,
	// and never more than fits a frame).
	MaxBatch int
	// IdleTimeout reaps streams idle for longer than this on the simulated
	// disk clock of the view they sample: a stream is idle once the view's
	// simulated time has advanced IdleTimeout past the stream's last
	// request, which only happens while other streams do I/O. Reaping runs
	// only when an open-stream request finds the server-wide cap exhausted
	// — the one moment an abandoned stream's slot hurts — so streams on an
	// uncontended server are never collected, however busy the shared
	// clock. Zero disables reaping.
	IdleTimeout time.Duration
	// RequestTimeout bounds, in wall-clock time, how long one request may
	// occupy the session loop once its frame header has arrived: the rest
	// of the frame must be read, the request handled and the response
	// fully written before the deadline, or the connection is closed. It
	// guards the serving loop against stalled and hostile peers (slow-loris
	// frames, dead TCP peers mid-response), which the simulated clock
	// cannot see. Zero disables per-request deadlines.
	RequestTimeout time.Duration
	// MaxWriteBacklog is write-path admission control: an append or delete
	// against a view whose in-memory buffer already holds this many entries
	// (records plus pending tombstones) receives a typed CodeWriteBacklog
	// rejection instead of growing the buffer without bound. Backlog drains
	// when the view flushes — explicitly, or via catalog maintenance in the
	// gaps between request bursts (default 65536).
	MaxWriteBacklog int
	// WriteRate is per-tenant write-rate admission: a tenant's appends and
	// deletes — across all of its connections — draw from one token bucket
	// refilled at this many entries per second. Connections that never set
	// a tenant each get their own bucket (the pre-fleet per-connection
	// behaviour). A batch that finds the bucket dry receives a typed
	// CodeWriteThrottled rejection before anything is applied, so the
	// client can safely retry the identical batch. 0 disables rate
	// admission.
	WriteRate float64
	// WriteBurst is the token bucket's capacity: the largest write burst one
	// tenant may land instantly. Defaults to max(WriteRate, MaxBatch)
	// when rate admission is on, so a full-size batch is always admittable.
	WriteBurst int
}

// maxBatchLimit is the largest batch that fits one frame with headroom for
// the batch response envelope.
const maxBatchLimit = (MaxFrame - 64) / record.Size

func (c Config) withDefaults() Config {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 256
	}
	if c.MaxStreamsPerConn <= 0 {
		c.MaxStreamsPerConn = 16
	}
	if c.MaxStreamsPerTenant <= 0 {
		c.MaxStreamsPerTenant = c.MaxStreams
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBatch > maxBatchLimit {
		c.MaxBatch = maxBatchLimit
	}
	if c.MaxWriteBacklog <= 0 {
		c.MaxWriteBacklog = 65536
	}
	if c.WriteRate > 0 && c.WriteBurst <= 0 {
		c.WriteBurst = c.MaxBatch
		if r := int(c.WriteRate); r > c.WriteBurst {
			c.WriteBurst = r
		}
	}
	return c
}

// ViewStream is the per-stream surface the serving layer drives: batch
// pulls, teardown, and the simulated time used for idle accounting. Both
// the unsharded and the sharded stream implement it.
type ViewStream interface {
	Sample(n int) ([]record.Record, error)
	Close() error
	SimNow() time.Duration
}

// ViewSource abstracts a servable view — unsharded or sharded — behind the
// exact surface the request handlers need.
type ViewSource interface {
	Dims() int
	Height() int
	Count() int64
	EstimateCount(record.Box) (float64, error)
	SimNow() time.Duration
	OpenStream(record.Box) (ViewStream, error)
}

// WritableSource is the optional write surface of a ViewSource. Sources
// backed by a live write path (the unsharded and sharded views both are)
// implement it; append, delete and flush requests against a source that
// does not receive a typed CodeReadOnly rejection.
type WritableSource interface {
	Insert(rec record.Record) error
	Delete(rec record.Record) error
	Flush() error
	// Commit blocks until every write accepted so far is durable in the
	// view's write-ahead log (a no-op for views running without one). The
	// handlers call it before acking an append or delete batch, so an ack
	// always means "survives a crash".
	Commit() error
	// WriteStats snapshots the write-path counters; the handlers use the
	// in-memory buffer size for backlog admission and the stats frame
	// aggregates the rest.
	WriteStats() lsm.WriteStats
}

// SeededSource is the optional seeded-open surface of a ViewSource: a
// stream whose randomness is pinned to an explicit seed, so replicas
// holding byte-identical view state serve byte-identical sample sequences
// for the same (query, seed). Both built-in sources implement it; seeded
// open requests against a source that does not are refused.
type SeededSource interface {
	OpenStreamSeeded(q record.Box, seed uint64) (ViewStream, error)
}

// localSource adapts an in-process unsharded view to ViewSource.
type localSource struct{ *sampleview.View }

func (v localSource) OpenStream(q record.Box) (ViewStream, error) {
	s, err := v.View.Query(q)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (v localSource) OpenStreamSeeded(q record.Box, seed uint64) (ViewStream, error) {
	s, err := v.View.QuerySeeded(q, seed)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// shardedSource adapts a multi-disk sharded view to ViewSource.
type shardedSource struct{ *shard.View }

func (v shardedSource) OpenStream(q record.Box) (ViewStream, error) {
	s, err := v.View.Query(q)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (v shardedSource) OpenStreamSeeded(q record.Box, seed uint64) (ViewStream, error) {
	s, err := v.View.QuerySeeded(q, seed)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// LocalSource adapts an unsharded view for AddSource.
func LocalSource(v *sampleview.View) ViewSource { return localSource{v} }

// ShardedSource adapts a sharded view for AddSource.
func ShardedSource(v *shard.View) ViewSource { return shardedSource{v} }

// Both built-in sources carry the live write path and the seeded opens the
// fleet tier's migration relies on.
var (
	_ WritableSource = localSource{}
	_ WritableSource = shardedSource{}
	_ SeededSource   = localSource{}
	_ SeededSource   = shardedSource{}
)

// tenantState is one tenant's admission accounting: its open-stream count
// and its write-rate token bucket, shared across every connection
// attributed to the tenant. Connections without a tenant each get a
// private tenantState under a per-connection key, which reduces to the
// pre-fleet per-connection accounting.
type tenantState struct {
	// mu guards the admission tallies. It nests strictly inside Server.mu:
	// every acquisition happens while the server lock is held, which keeps
	// the tenant tally and the server-wide openStreams total moving in
	// lockstep.
	mu      sync.Mutex
	streams int // guarded by mu
	conns   int // guarded by mu; live sessions attributed via set-tenant

	// Write-rate token bucket (Config.WriteRate / WriteBurst). The bucket
	// starts full and refills continuously on the wall clock; tbLast is the
	// instant of the last draw.
	tbMu     sync.Mutex
	tbTokens float64   // guarded by tbMu
	tbLast   time.Time // guarded by tbMu
	tbInit   bool      // guarded by tbMu
}

// servedView is one view registered with the server.
type servedView struct {
	id   uint32
	name string
	v    ViewSource
	// fromCatalog marks views resolved lazily through the hosted catalog, so
	// list-views does not report them twice.
	fromCatalog bool
}

// Server multiplexes client sessions over a set of served sample views.
// Create one with New, register views with AddView, then run Serve on one
// or more listeners. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	stats serverCounters

	mu          sync.Mutex
	views       map[string]*servedView  // guarded by mu
	viewsByID   map[uint32]*servedView  // guarded by mu
	sessions    map[*session]struct{}   // guarded by mu
	listeners   []net.Listener          // guarded by mu
	catalog     *catalog.Catalog        // guarded by mu
	tenants     map[string]*tenantState // guarded by mu; admission accounting per tenant key
	openStreams int                     // guarded by mu; admission-controlled total
	nextSession uint64                  // guarded by mu
	nextView    uint32                  // guarded by mu
	draining    bool                    // guarded by mu

	// inFlight counts requests currently being handled across all sessions;
	// background maintenance runs only when it drops to zero, so jobs fill
	// the gaps between request bursts instead of delaying live traffic.
	inFlight atomic.Int64

	wg       sync.WaitGroup
	shutOnce sync.Once
	done     chan struct{}
}

// New returns a server with the given configuration and no views.
func New(cfg Config) *Server {
	return &Server{
		cfg:       cfg.withDefaults(),
		views:     make(map[string]*servedView),
		viewsByID: make(map[uint32]*servedView),
		sessions:  make(map[*session]struct{}),
		tenants:   make(map[string]*tenantState),
		done:      make(chan struct{}),
	}
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// AddView registers v under name. Clients resolve it with an open-view
// request. Registering a name twice replaces the old registration for new
// open-view requests; streams already open keep sampling the view they
// started on.
func (s *Server) AddView(name string, v *sampleview.View) {
	s.AddSource(name, localSource{v})
}

// AddSource registers any ViewSource (for example ShardedSource) under
// name, with the same replacement semantics as AddView.
func (s *Server) AddSource(name string, v ViewSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextView++
	sv := &servedView{id: s.nextView, name: name, v: v}
	s.views[name] = sv
	s.viewsByID[sv.id] = sv
}

// SetCatalog hosts a view catalog on the server: open-view requests fall
// through to it by name, list-views reports its registry, and its due
// background jobs (compaction, checksum scrubs) run in the gaps between
// request bursts — whenever the last in-flight request finishes.
func (s *Server) SetCatalog(c *catalog.Catalog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catalog = c
}

// getCatalog returns the hosted catalog, if any.
func (s *Server) getCatalog() *catalog.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.catalog
}

// runMaintenance offers the hosted catalog one maintenance slot. It is
// called when the server goes idle (the last in-flight request finished);
// TryRunDueJobs backs off instead of blocking if the catalog is busy, so
// a request arriving concurrently is never queued behind a compaction.
func (s *Server) runMaintenance() {
	c := s.getCatalog()
	if c == nil {
		return
	}
	reports, ok := c.TryRunDueJobs()
	if !ok {
		return
	}
	for i := range reports {
		s.stats.MaintJobs.Add(1)
		if reports[i].Err != nil {
			s.stats.MaintJobErrors.Add(1)
		}
	}
}

// listViews reports every servable view: statically registered ones plus
// the hosted catalog's registry, sorted by name.
func (s *Server) listViews() []ViewListEntry {
	s.mu.Lock()
	c := s.catalog
	static := make([]*servedView, 0, len(s.views))
	for _, sv := range s.views {
		if !sv.fromCatalog {
			static = append(static, sv)
		}
	}
	s.mu.Unlock()
	out := make([]ViewListEntry, 0, len(static))
	for _, sv := range static {
		out = append(out, ViewListEntry{Name: sv.name, Count: sv.v.Count(), Health: "ok"})
	}
	if c != nil {
		for _, info := range c.List() {
			out = append(out, ViewListEntry{
				Name:      info.Name,
				Sharded:   true,
				K:         uint32(info.K),
				Partition: info.Partition.String(),
				Count:     info.Count,
				Health:    info.Health,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Serve accepts connections on ln until the listener fails or Shutdown is
// called; Shutdown makes it return nil. Each connection gets a session
// goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.stats.ConnsAccepted.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown gracefully stops the server: listeners close, sessions finish
// the request they are serving (an in-flight batch is fully written before
// its connection closes — no acknowledged batch is ever dropped), idle
// sessions are disconnected, and Shutdown returns once every session
// goroutine has exited. It is idempotent; concurrent callers all block
// until the drain completes.
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		lns := append([]net.Listener(nil), s.listeners...)
		sessions := make([]*session, 0, len(s.sessions))
		for sess := range s.sessions {
			sessions = append(sessions, sess)
		}
		s.mu.Unlock()

		for _, ln := range lns {
			ln.Close()
		}
		// drainClose waits for the session's in-flight request (if any) to
		// finish writing its response, then severs the connection so the
		// read loop unblocks.
		for _, sess := range sessions {
			sess.drainClose()
		}
		s.wg.Wait()
		close(s.done)
	})
	<-s.done
}

// register enrolls a new session; it fails once draining has started.
func (s *Server) register(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.nextSession++
	sess.id = s.nextSession
	s.sessions[sess] = struct{}{}
	return true
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	closed := sess.closeAllStreams()
	key, named := sess.tenantKey()
	s.releaseStreams(key, closed)
	s.dropTenant(key, named)
	s.stats.ConnsClosed.Add(1)
}

// lookupView resolves a view by name or id. A name missing from the static
// registry falls through to the hosted catalog; the resolution is cached so
// streams opened against it keep a stable view id.
func (s *Server) lookupView(name string) (*servedView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sv, ok := s.views[name]; ok {
		return sv, true
	}
	if s.catalog == nil {
		return nil, false
	}
	v, ok := s.catalog.Get(name)
	if !ok {
		return nil, false
	}
	s.nextView++
	sv := &servedView{id: s.nextView, name: name, v: shardedSource{v}, fromCatalog: true}
	s.views[name] = sv
	s.viewsByID[sv.id] = sv
	return sv, true
}

func (s *Server) lookupViewID(id uint32) (*servedView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.viewsByID[id]
	return sv, ok
}

// tenantKeyFor namespaces a tenant name so it can never collide with the
// per-connection fallback keys ("conn:<session id>").
func tenantKeyFor(name string) string { return "tenant:" + name }

// tenantLocked returns key's accounting bucket, creating it on first use.
// Callers hold s.mu.
func (s *Server) tenantLocked(key string) *tenantState {
	ts, ok := s.tenants[key]
	if !ok {
		ts = &tenantState{}
		s.tenants[key] = ts
	}
	return ts
}

// admitStream claims one server-wide stream slot and one slot of the given
// tenant key's cap. It returns a rejection code (and false) when the server
// is draining or either cap is reached.
func (s *Server) admitStream(key string) (uint16, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return CodeShuttingDown, false
	}
	if s.openStreams >= s.cfg.MaxStreams {
		return CodeServerStreams, false
	}
	ts := s.tenantLocked(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.streams >= s.cfg.MaxStreamsPerTenant {
		return CodeTenantStreams, false
	}
	s.openStreams++
	ts.streams++
	return 0, true
}

// releaseStreams returns n stream slots, server-wide and to the tenant key
// they were admitted under.
func (s *Server) releaseStreams(key string, n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.openStreams -= n
	if ts, ok := s.tenants[key]; ok {
		ts.mu.Lock()
		ts.streams -= n
		ts.mu.Unlock()
	}
	s.mu.Unlock()
}

// admitRate draws n entries from the tenant key's write-rate token bucket,
// reporting whether the batch is admitted. The bucket deliberately refills
// on the "wall clock": rate admission paces real client traffic, a pressure
// the simulated disk clock cannot see. Disabled (always true) when
// Config.WriteRate is 0.
func (s *Server) admitRate(key string, n int) bool {
	rate := s.cfg.WriteRate
	if rate <= 0 || n <= 0 {
		return true
	}
	s.mu.Lock()
	ts := s.tenantLocked(key)
	s.mu.Unlock()
	burst := float64(s.cfg.WriteBurst)
	ts.tbMu.Lock()
	defer ts.tbMu.Unlock()
	now := time.Now()
	if !ts.tbInit {
		ts.tbTokens, ts.tbInit = burst, true
	} else {
		ts.tbTokens += now.Sub(ts.tbLast).Seconds() * rate
		if ts.tbTokens > burst {
			ts.tbTokens = burst
		}
	}
	ts.tbLast = now
	if ts.tbTokens < float64(n) {
		return false
	}
	ts.tbTokens -= float64(n)
	return true
}

// attributeTenant binds a session to a named tenant for accounting.
func (s *Server) attributeTenant(name string) {
	s.mu.Lock()
	ts := s.tenantLocked(tenantKeyFor(name))
	ts.mu.Lock()
	ts.conns++
	ts.mu.Unlock()
	s.mu.Unlock()
}

// dropTenant releases a session's attribution at teardown, deleting the
// accounting bucket once nothing references it (named tenants when their
// last connection leaves; per-connection keys always, since only the owning
// session ever used them).
func (s *Server) dropTenant(key string, named bool) {
	s.mu.Lock()
	if ts, ok := s.tenants[key]; ok {
		ts.mu.Lock()
		if named {
			ts.conns--
		}
		dead := ts.conns <= 0 && ts.streams <= 0
		ts.mu.Unlock()
		if dead {
			delete(s.tenants, key)
		}
	}
	s.mu.Unlock()
}

// tenantsActive counts live tenant accounting buckets (named and
// per-connection alike): the denominator of a fair share.
func (s *Server) tenantsActive() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.tenants))
}

// replicaInfo answers a replica-info request with the server's identity and
// live load.
func (s *Server) replicaInfo() replicaInfoResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return replicaInfoResp{
		ReplicaID:   s.cfg.ReplicaID,
		OpenStreams: uint32(s.openStreams),
		MaxStreams:  uint32(s.cfg.MaxStreams),
		Draining:    s.draining,
	}
}

// reapIdle closes streams idle past IdleTimeout on their view's simulated
// clock. It runs on the open-stream path when the server-wide cap is
// exhausted — the moment admission slots are contended — so reaping needs
// no wall-clock timer: an abandoned stream is collected as soon as other
// traffic has both advanced the simulated disk and run out of slots.
func (s *Server) reapIdle() {
	if s.cfg.IdleTimeout <= 0 {
		return
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	total := 0
	for _, sess := range sessions {
		n := sess.reapIdle(s.cfg.IdleTimeout)
		if n > 0 {
			key, _ := sess.tenantKey()
			s.releaseStreams(key, n)
			total += n
		}
	}
	s.stats.StreamsReaped.Add(int64(total))
	s.stats.StreamsClosed.Add(int64(total))
}

// Snapshot returns a point-in-time copy of the server's counters plus one
// row per live session.
func (s *Server) Snapshot() *StatsSnapshot {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	views := make([]*servedView, 0, len(s.views))
	for _, sv := range s.views {
		views = append(views, sv)
	}
	openConns := int64(len(s.sessions))
	openStreams := int64(s.openStreams)
	s.mu.Unlock()

	var write lsm.WriteStats
	for _, sv := range views {
		if w, ok := sv.v.(WritableSource); ok {
			ws := w.WriteStats()
			if ws.DeltaLevels > write.DeltaLevels {
				write.DeltaLevels = ws.DeltaLevels
			}
			write.MemViewRecords += ws.MemViewRecords
			write.MemViewTombstones += ws.MemViewTombstones
			write.TombstonesPending += ws.TombstonesPending
			write.Compactions += ws.Compactions
			write.WALBytes += ws.WALBytes
			write.WALFsyncs += ws.WALFsyncs
			write.WALReplayed += ws.WALReplayed
			write.WALSegments += ws.WALSegments
		}
	}

	c := &s.stats
	snap := &StatsSnapshot{
		OpenConns:       openConns,
		OpenStreams:     openStreams,
		ConnsAccepted:   c.ConnsAccepted.Load(),
		ConnsRejected:   c.ConnsRejected.Load(),
		StreamsOpened:   c.StreamsOpened.Load(),
		StreamsClosed:   c.StreamsClosed.Load(),
		StreamsReaped:   c.StreamsReaped.Load(),
		BatchesServed:   c.BatchesServed.Load(),
		RecordsServed:   c.RecordsServed.Load(),
		EstimatesServed: c.EstimatesServed.Load(),
		RejectedServer:  c.RejectedServer.Load(),
		RejectedConn:    c.RejectedConn.Load(),
		RejectedDrain:   c.RejectedDrain.Load(),
		BadFrames:       c.BadFrames.Load(),
		BytesRead:       c.BytesRead.Load(),
		BytesWritten:    c.BytesWritten.Load(),
		SimIO:           time.Duration(c.SimIONanos.Load()),
		TransientErrors: c.TransientErrors.Load(),
		DegradedErrors:  c.DegradedErrors.Load(),
		MaintJobs:       c.MaintJobs.Load(),
		MaintJobErrors:  c.MaintJobErrors.Load(),

		RecordsIngested:   c.RecordsIngested.Load(),
		RecordsDeleted:    c.RecordsDeleted.Load(),
		FlushesServed:     c.FlushesServed.Load(),
		RejectedWrites:    c.RejectedWrites.Load(),
		MemViewRecords:    write.MemViewRecords,
		TombstonesPending: write.TombstonesPending,
		DeltaLevels:       write.DeltaLevels,
		CompactionsRun:    write.Compactions,

		RejectedThrottle: c.RejectedThrottle.Load(),
		WALBytes:         write.WALBytes,
		WALFsyncs:        write.WALFsyncs,
		WALReplayed:      write.WALReplayed,
		WALSegments:      write.WALSegments,

		RejectedTenant: c.RejectedTenant.Load(),
		TenantsActive:  s.tenantsActive(),
	}
	for _, sess := range sessions {
		snap.Sessions = append(snap.Sessions, sess.snapshot())
	}
	return snap
}
