package server

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sampleview"
	"sampleview/internal/record"
)

// Config tunes the server's admission control and housekeeping. The zero
// value gets sensible defaults from withDefaults.
type Config struct {
	// MaxStreams caps concurrently open streams server-wide. An open-stream
	// request past the cap receives a typed CodeServerStreams rejection
	// (default 256).
	MaxStreams int
	// MaxStreamsPerConn caps open streams per connection; past it the
	// request receives CodeConnStreams (default 16).
	MaxStreamsPerConn int
	// MaxBatch caps records per batch response. Larger client requests are
	// clamped, bounding per-request buffering — backpressure comes from the
	// strict request/response alternation, not from queues (default 4096,
	// and never more than fits a frame).
	MaxBatch int
	// IdleTimeout reaps streams idle for longer than this on the simulated
	// disk clock of the view they sample: a stream is idle once the view's
	// simulated time has advanced IdleTimeout past the stream's last
	// request, which only happens while other streams do I/O. Reaping runs
	// only when an open-stream request finds the server-wide cap exhausted
	// — the one moment an abandoned stream's slot hurts — so streams on an
	// uncontended server are never collected, however busy the shared
	// clock. Zero disables reaping.
	IdleTimeout time.Duration
	// RequestTimeout bounds, in wall-clock time, how long one request may
	// occupy the session loop once its frame header has arrived: the rest
	// of the frame must be read, the request handled and the response
	// fully written before the deadline, or the connection is closed. It
	// guards the serving loop against stalled and hostile peers (slow-loris
	// frames, dead TCP peers mid-response), which the simulated clock
	// cannot see. Zero disables per-request deadlines.
	RequestTimeout time.Duration
}

// maxBatchLimit is the largest batch that fits one frame with headroom for
// the batch response envelope.
const maxBatchLimit = (MaxFrame - 64) / record.Size

func (c Config) withDefaults() Config {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 256
	}
	if c.MaxStreamsPerConn <= 0 {
		c.MaxStreamsPerConn = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBatch > maxBatchLimit {
		c.MaxBatch = maxBatchLimit
	}
	return c
}

// servedView is one view registered with the server.
type servedView struct {
	id   uint32
	name string
	v    *sampleview.View
}

// Server multiplexes client sessions over a set of served sample views.
// Create one with New, register views with AddView, then run Serve on one
// or more listeners. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	stats serverCounters

	mu          sync.Mutex
	views       map[string]*servedView // guarded by mu
	viewsByID   map[uint32]*servedView // guarded by mu
	sessions    map[*session]struct{}  // guarded by mu
	listeners   []net.Listener         // guarded by mu
	openStreams int                    // guarded by mu; admission-controlled total
	nextSession uint64                 // guarded by mu
	nextView    uint32                 // guarded by mu
	draining    bool                   // guarded by mu

	wg       sync.WaitGroup
	shutOnce sync.Once
	done     chan struct{}
}

// New returns a server with the given configuration and no views.
func New(cfg Config) *Server {
	return &Server{
		cfg:       cfg.withDefaults(),
		views:     make(map[string]*servedView),
		viewsByID: make(map[uint32]*servedView),
		sessions:  make(map[*session]struct{}),
		done:      make(chan struct{}),
	}
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// AddView registers v under name. Clients resolve it with an open-view
// request. Registering a name twice replaces the old registration for new
// open-view requests; streams already open keep sampling the view they
// started on.
func (s *Server) AddView(name string, v *sampleview.View) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextView++
	sv := &servedView{id: s.nextView, name: name, v: v}
	s.views[name] = sv
	s.viewsByID[sv.id] = sv
}

// Serve accepts connections on ln until the listener fails or Shutdown is
// called; Shutdown makes it return nil. Each connection gets a session
// goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.stats.ConnsAccepted.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown gracefully stops the server: listeners close, sessions finish
// the request they are serving (an in-flight batch is fully written before
// its connection closes — no acknowledged batch is ever dropped), idle
// sessions are disconnected, and Shutdown returns once every session
// goroutine has exited. It is idempotent; concurrent callers all block
// until the drain completes.
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		lns := append([]net.Listener(nil), s.listeners...)
		sessions := make([]*session, 0, len(s.sessions))
		for sess := range s.sessions {
			sessions = append(sessions, sess)
		}
		s.mu.Unlock()

		for _, ln := range lns {
			ln.Close()
		}
		// drainClose waits for the session's in-flight request (if any) to
		// finish writing its response, then severs the connection so the
		// read loop unblocks.
		for _, sess := range sessions {
			sess.drainClose()
		}
		s.wg.Wait()
		close(s.done)
	})
	<-s.done
}

// register enrolls a new session; it fails once draining has started.
func (s *Server) register(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.nextSession++
	sess.id = s.nextSession
	s.sessions[sess] = struct{}{}
	return true
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	closed := sess.closeAllStreams()
	s.releaseStreams(closed)
	s.stats.ConnsClosed.Add(1)
}

// lookupView resolves a view by name or id.
func (s *Server) lookupView(name string) (*servedView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.views[name]
	return sv, ok
}

func (s *Server) lookupViewID(id uint32) (*servedView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.viewsByID[id]
	return sv, ok
}

// admitStream claims one server-wide stream slot. It returns a rejection
// code (and false) when the server is draining or at its cap.
func (s *Server) admitStream() (uint16, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return CodeShuttingDown, false
	}
	if s.openStreams >= s.cfg.MaxStreams {
		return CodeServerStreams, false
	}
	s.openStreams++
	return 0, true
}

// releaseStreams returns n server-wide stream slots.
func (s *Server) releaseStreams(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.openStreams -= n
	s.mu.Unlock()
}

// reapIdle closes streams idle past IdleTimeout on their view's simulated
// clock. It runs on the open-stream path when the server-wide cap is
// exhausted — the moment admission slots are contended — so reaping needs
// no wall-clock timer: an abandoned stream is collected as soon as other
// traffic has both advanced the simulated disk and run out of slots.
func (s *Server) reapIdle() {
	if s.cfg.IdleTimeout <= 0 {
		return
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	total := 0
	for _, sess := range sessions {
		total += sess.reapIdle(s.cfg.IdleTimeout)
	}
	s.releaseStreams(total)
	s.stats.StreamsReaped.Add(int64(total))
	s.stats.StreamsClosed.Add(int64(total))
}

// Snapshot returns a point-in-time copy of the server's counters plus one
// row per live session.
func (s *Server) Snapshot() *StatsSnapshot {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	openConns := int64(len(s.sessions))
	openStreams := int64(s.openStreams)
	s.mu.Unlock()

	c := &s.stats
	snap := &StatsSnapshot{
		OpenConns:       openConns,
		OpenStreams:     openStreams,
		ConnsAccepted:   c.ConnsAccepted.Load(),
		ConnsRejected:   c.ConnsRejected.Load(),
		StreamsOpened:   c.StreamsOpened.Load(),
		StreamsClosed:   c.StreamsClosed.Load(),
		StreamsReaped:   c.StreamsReaped.Load(),
		BatchesServed:   c.BatchesServed.Load(),
		RecordsServed:   c.RecordsServed.Load(),
		EstimatesServed: c.EstimatesServed.Load(),
		RejectedServer:  c.RejectedServer.Load(),
		RejectedConn:    c.RejectedConn.Load(),
		RejectedDrain:   c.RejectedDrain.Load(),
		BadFrames:       c.BadFrames.Load(),
		BytesRead:       c.BytesRead.Load(),
		BytesWritten:    c.BytesWritten.Load(),
		SimIO:           time.Duration(c.SimIONanos.Load()),
		TransientErrors: c.TransientErrors.Load(),
		DegradedErrors:  c.DegradedErrors.Load(),
	}
	for _, sess := range sessions {
		snap.Sessions = append(snap.Sessions, sess.snapshot())
	}
	return snap
}
