package server

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sampleview/internal/record"
)

// fuzzSeedFrames returns one well-formed frame per message type, so the
// fuzzer starts from inputs that reach every decoder.
func fuzzSeedFrames() [][]byte {
	box := record.Box2D(-100, 100, 0, 1<<40)
	recs := []record.Record{{Key: 1, Amount: 2, Seq: 3}, {Key: -1, Amount: -2, Seq: 4}}
	snap := &StatsSnapshot{OpenConns: 1, RecordsServed: 99, Sessions: []SessionSnapshot{{ID: 7, Records: 42}}}
	msgs := []struct {
		t    FrameType
		body []byte
	}{
		{FOpenView, openViewReq{Name: "sale"}.encode()},
		{FOpenStream, openStreamReq{ViewID: 1, Query: box}.encode()},
		{FNextBatch, nextBatchReq{StreamID: 2, Max: 512}.encode()},
		{FEstimate, estimateReq{ViewID: 1, Query: record.Box1D(5, 9)}.encode()},
		{FCancel, cancelReq{StreamID: 2}.encode()},
		{FStats, nil},
		{FAppend, appendReq{ViewID: 1, Records: recs}.encode()},
		{FDeleteRecs, deleteRecsReq{ViewID: 1, Records: recs[:1]}.encode()},
		{FFlushView, flushViewReq{ViewID: 1}.encode()},
		{FAppendOK, writeAck{ViewID: 1, N: 2}.encode()},
		{FDeleteOK, writeAck{ViewID: 1, N: 1}.encode()},
		{FFlushOK, writeAck{ViewID: 1, N: 3}.encode()},
		{FViewInfo, viewInfo{ViewID: 1, Dims: 2, Height: 6, Count: 1000}.encode()},
		{FStreamOpened, streamOpened{StreamID: 2}.encode()},
		{FBatch, batchResp{StreamID: 2, EOF: true, Records: recs}.encode()},
		{FEstimateResult, estimateResp{Count: 12.5}.encode()},
		{FCancelOK, cancelReq{StreamID: 2}.encode()},
		{FStatsResult, snap.encode()},
		{FError, errorResp{Code: CodeServerStreams, Msg: "full"}.encode()},
	}
	var out [][]byte
	for _, m := range msgs {
		f, err := AppendFrame(nil, m.t, m.body)
		if err != nil {
			continue
		}
		out = append(out, f)
	}
	return out
}

// decodeBody drives the per-type message decoder, mirroring the dispatch
// in session.handle and the client's response handling.
func decodeBody(t FrameType, body []byte) error {
	switch t {
	case FOpenView:
		_, err := decodeOpenViewReq(body)
		return err
	case FOpenStream:
		_, err := decodeOpenStreamReq(body)
		return err
	case FNextBatch:
		_, err := decodeNextBatchReq(body)
		return err
	case FEstimate:
		_, err := decodeEstimateReq(body)
		return err
	case FCancel, FCancelOK:
		_, err := decodeCancelReq(body)
		return err
	case FAppend:
		_, err := decodeAppendReq(body)
		return err
	case FDeleteRecs:
		_, err := decodeDeleteRecsReq(body)
		return err
	case FFlushView:
		_, err := decodeFlushViewReq(body)
		return err
	case FAppendOK, FDeleteOK, FFlushOK:
		_, err := decodeWriteAck(body)
		return err
	case FViewInfo:
		_, err := decodeViewInfo(body)
		return err
	case FStreamOpened:
		_, err := decodeStreamOpened(body)
		return err
	case FBatch:
		_, err := decodeBatchResp(body)
		return err
	case FEstimateResult:
		_, err := decodeEstimateResp(body)
		return err
	case FStatsResult:
		_, err := decodeStatsSnapshot(body)
		return err
	case FError:
		_, err := decodeErrorResp(body)
		return err
	default:
		return nil
	}
}

// FuzzFrameDecode hammers the wire codec with arbitrary bytes: truncated,
// oversized and corrupt-length inputs must produce errors, never panics,
// and never allocations driven by a fabricated length prefix. Structurally
// valid frames must decode, re-encode and re-decode to the same message.
func FuzzFrameDecode(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
	}
	// Adversarial seeds: corrupt lengths, truncations, absurd claims.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(binary.LittleEndian.AppendUint32(nil, 0))
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrame+1))
	huge := binary.LittleEndian.AppendUint32(nil, 20)
	huge = append(huge, byte(FBatch))
	huge = appendU32(huge, 1)
	huge = append(huge, 0)
	huge = appendU32(huge, 0xffffffff) // batch claiming 4G records
	f.Add(append(huge, make([]byte, 6)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk every frame in the input, like the session's read loop.
		rest := data
		for depth := 0; depth < 32; depth++ {
			ft, body, next, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			// The no-copy decoder and the io.Reader path must agree.
			rt, rbody, rerr := ReadFrame(bytes.NewReader(rest))
			if rerr != nil || rt != ft || !bytes.Equal(rbody, body) {
				t.Fatalf("DecodeFrame and ReadFrame disagree: (%v, %d bytes, %v) vs (%v, %d bytes, %v)",
					ft, len(body), err, rt, len(rbody), rerr)
			}
			if derr := decodeBody(ft, body); derr == nil {
				// A decodable message must survive a re-encode round trip.
				reencodeCheck(t, ft, body)
			}
			rest = next
		}
		// Decoding arbitrary bodies directly must never panic either,
		// whatever type they claim to be.
		for _, ft := range []FrameType{FOpenView, FOpenStream, FNextBatch, FEstimate,
			FCancel, FAppend, FDeleteRecs, FFlushView, FAppendOK, FFlushOK,
			FViewInfo, FStreamOpened, FBatch, FEstimateResult, FStatsResult, FError} {
			_ = decodeBody(ft, data)
		}
	})
}

// reencodeCheck asserts decode → encode is the identity on the wire bytes
// for the message types with canonical encodings.
func reencodeCheck(t *testing.T, ft FrameType, body []byte) {
	t.Helper()
	var out []byte
	switch ft {
	case FOpenView:
		m, _ := decodeOpenViewReq(body)
		out = m.encode()
	case FOpenStream:
		m, _ := decodeOpenStreamReq(body)
		out = m.encode()
	case FNextBatch:
		m, _ := decodeNextBatchReq(body)
		out = m.encode()
	case FEstimate:
		m, _ := decodeEstimateReq(body)
		out = m.encode()
	case FCancel, FCancelOK:
		m, _ := decodeCancelReq(body)
		out = m.encode()
	case FAppend:
		m, _ := decodeAppendReq(body)
		out = m.encode()
	case FDeleteRecs:
		m, _ := decodeDeleteRecsReq(body)
		out = m.encode()
	case FFlushView:
		m, _ := decodeFlushViewReq(body)
		out = m.encode()
	case FAppendOK, FDeleteOK, FFlushOK:
		m, _ := decodeWriteAck(body)
		out = m.encode()
	case FViewInfo:
		m, _ := decodeViewInfo(body)
		out = m.encode()
	case FStreamOpened:
		m, _ := decodeStreamOpened(body)
		out = m.encode()
	case FBatch:
		m, _ := decodeBatchResp(body)
		out = m.encode()
	case FError:
		m, _ := decodeErrorResp(body)
		out = m.encode()
	default:
		return // estimateResp (NaN bit patterns) and stats (padding) skip byte-identity
	}
	if !bytes.Equal(out, body) {
		t.Fatalf("%v: re-encode changed the bytes:\n in %x\nout %x", ft, body, out)
	}
}
