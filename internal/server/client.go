package server

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sampleview/internal/aqp"
	"sampleview/internal/record"
)

// RetryPolicy governs the client's automatic retry of typed transient
// server failures (CodeTransient): capped exponential backoff with
// deterministic, seeded jitter, so a fleet of retrying clients neither
// stampedes in lockstep nor behaves differently across identical runs.
type RetryPolicy struct {
	// MaxRetries is how many times one request is retried after its first
	// transient failure. 0 selects the default (6); negative disables
	// client-side retry entirely.
	MaxRetries int
	// BaseDelay is the first backoff step (default 2ms); successive steps
	// double until MaxDelay (default 250ms) caps them.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter. A fixed seed gives a reproducible backoff
	// schedule.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// backoff computes the delay before retry number attempt (0-based):
// BaseDelay doubling per attempt, capped at MaxDelay, with the upper half
// of the interval jittered by the seeded source.
func (p RetryPolicy) backoff(attempt int, jitter uint64) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(jitter%uint64(half)+1)
	}
	return d
}

// Client is a connection to a sample-view server. One Client maps to one
// server session; any number of remote views and streams may be multiplexed
// over it. A Client is safe for concurrent use — requests serialize on the
// connection, matching the protocol's strict request/response alternation.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn            // guarded by mu
	br     *bufio.Reader       // guarded by mu
	bw     *bufio.Writer       // guarded by mu
	err    error               // guarded by mu; sticky transport failure
	policy RetryPolicy         // guarded by mu
	rng    *rand.Rand          // guarded by mu; seeded jitter source
	sleep  func(time.Duration) // guarded by mu; backoff wait, swappable in tests

	retries atomic.Int64 // transient failures absorbed by retrying
}

// SetRetryPolicy replaces the client's transient-retry policy (reseeding
// the jitter source). The zero policy restores the defaults.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p.withDefaults()
	c.rng = rand.New(rand.NewPCG(c.policy.Seed, c.policy.Seed^0x9e3779b97f4a7c15))
}

// Retries returns how many transient server failures this client has
// absorbed by transparently retrying.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Dial connects to a sample-view server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn, e.g. net.Pipe
// in tests) as a Client.
func NewClient(conn net.Conn) *Client {
	p := RetryPolicy{}.withDefaults()
	return &Client{
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 64<<10),
		bw:     bufio.NewWriterSize(conn, 64<<10),
		policy: p,
		rng:    rand.New(rand.NewPCG(p.Seed, p.Seed^0x9e3779b97f4a7c15)),
		// Backoff waits are real (wall clock) pauses between network
		// retries; tests substitute a recording stub.
		sleep: time.Sleep,
	}
}

// Close tears down the connection. Streams opened through the client
// become unusable; the server reclaims their admission slots on
// disconnect.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = fmt.Errorf("server: client closed")
	}
	return c.conn.Close()
}

// roundTrip sends one request frame and reads the single response frame.
// Server-signalled failures come back as *Error; transport failures poison
// the client.
func (c *Client) roundTrip(t FrameType, body []byte) (FrameType, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	fail := func(err error) (FrameType, []byte, error) {
		c.err = err
		c.conn.Close()
		return 0, nil, err
	}
	if err := WriteFrame(c.bw, t, body); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(fmt.Errorf("server: flushing %v request: %w", t, err))
	}
	rt, rbody, err := ReadFrame(c.br)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("server: connection closed by server: %w", io.EOF)
		}
		return fail(err)
	}
	if rt == FError {
		e, derr := decodeErrorResp(rbody)
		if derr != nil {
			return fail(derr)
		}
		return rt, nil, &Error{Code: e.Code, Msg: e.Msg}
	}
	return rt, rbody, nil
}

// expectRetry is expect plus transient-fault absorption: a CodeTransient
// error frame is retried under the client's RetryPolicy — capped
// exponential backoff, seeded jitter, a wall clock wait between attempts —
// before the failure surfaces. It is safe only for requests the server
// treats as resumable; batch pulls qualify because a transient failure
// makes no stream progress.
func (c *Client) expectRetry(req FrameType, body []byte, want FrameType) ([]byte, error) {
	return c.expectRetryIf(req, body, want, IsTransient)
}

// expectRetryIf is expectRetry with a caller-chosen retry predicate. Every
// retried failure must be one the server rejected before applying anything
// (transient pulls, write-rate throttles), so replaying the identical
// request is safe.
func (c *Client) expectRetryIf(req FrameType, body []byte, want FrameType, retryable func(error) bool) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		rbody, err := c.expect(req, body, want)
		if err == nil || !retryable(err) {
			return rbody, err
		}
		c.mu.Lock()
		p := c.policy
		jitter := c.rng.Uint64()
		sleep := c.sleep
		c.mu.Unlock()
		if attempt >= p.MaxRetries {
			return rbody, err
		}
		c.retries.Add(1)
		if sleep != nil {
			sleep(p.backoff(attempt, jitter))
		}
	}
}

// expect asserts the response frame type.
func (c *Client) expect(req FrameType, body []byte, want FrameType) ([]byte, error) {
	rt, rbody, err := c.roundTrip(req, body)
	if err != nil {
		return nil, err
	}
	if rt != want {
		err := fmt.Errorf("server: %v request answered with %v frame", req, rt)
		c.mu.Lock()
		c.err = err
		c.conn.Close()
		c.mu.Unlock()
		return nil, err
	}
	return rbody, nil
}

// OpenView resolves a served view by name.
func (c *Client) OpenView(name string) (*RemoteView, error) {
	rbody, err := c.expect(FOpenView, openViewReq{Name: name}.encode(), FViewInfo)
	if err != nil {
		return nil, err
	}
	info, err := decodeViewInfo(rbody)
	if err != nil {
		return nil, err
	}
	return &RemoteView{c: c, id: info.ViewID, dims: int(info.Dims), height: int(info.Height), count: info.Count}, nil
}

// ListViews enumerates the server's servable views: statically registered
// ones plus the hosted catalog's registry, sorted by name.
func (c *Client) ListViews() ([]ViewListEntry, error) {
	rbody, err := c.expect(FListViews, nil, FViewList)
	if err != nil {
		return nil, err
	}
	resp, err := decodeViewListResp(rbody)
	if err != nil {
		return nil, err
	}
	return resp.Views, nil
}

// ServerStats fetches the server's observability snapshot.
func (c *Client) ServerStats() (*StatsSnapshot, error) {
	rbody, err := c.expect(FStats, nil, FStatsResult)
	if err != nil {
		return nil, err
	}
	return decodeStatsSnapshot(rbody)
}

// SetTenant attributes this connection's quota usage to a named tenant:
// streams opened and writes landed afterwards draw from the tenant's caps,
// shared across every connection that set the same tenant, instead of
// per-connection accounting. It must be called before the connection's
// first stream opens and at most once per connection (repeating the same
// tenant is an idempotent no-op).
func (c *Client) SetTenant(tenant string) error {
	rbody, err := c.expect(FSetTenant, setTenantReq{Tenant: tenant}.encode(), FTenantOK)
	if err != nil {
		return err
	}
	ack, err := decodeSetTenantReq(rbody)
	if err != nil {
		return err
	}
	if ack.Tenant != tenant {
		return fmt.Errorf("server: set-tenant acked %q, want %q", ack.Tenant, tenant)
	}
	return nil
}

// ReplicaInfo identifies a server in a fleet and reports its live load; a
// router polls it for placement and health.
type ReplicaInfo struct {
	ReplicaID   string
	OpenStreams int
	MaxStreams  int
	Draining    bool
}

// ReplicaInfo fetches the server's fleet identity and load.
func (c *Client) ReplicaInfo() (ReplicaInfo, error) {
	rbody, err := c.expect(FReplicaInfo, nil, FReplicaInfoResult)
	if err != nil {
		return ReplicaInfo{}, err
	}
	resp, err := decodeReplicaInfoResp(rbody)
	if err != nil {
		return ReplicaInfo{}, err
	}
	return ReplicaInfo{
		ReplicaID:   resp.ReplicaID,
		OpenStreams: int(resp.OpenStreams),
		MaxStreams:  int(resp.MaxStreams),
		Draining:    resp.Draining,
	}, nil
}

// RemoteView is a served view resolved over a client connection.
type RemoteView struct {
	c      *Client
	id     uint32
	dims   int
	height int
	count  int64
}

// Dims returns the view's indexed dimension count.
func (v *RemoteView) Dims() int { return v.dims }

// Height returns the view's ACE Tree height.
func (v *RemoteView) Height() int { return v.height }

// Count returns the view's record count at open time.
func (v *RemoteView) Count() int64 { return v.count }

// EstimateCount estimates the number of records matching q, served from
// the view's internal counts plus a scan of any delta levels. The scan can
// hit transient storage faults, which the retry policy absorbs (the
// estimate is idempotent).
func (v *RemoteView) EstimateCount(q record.Box) (float64, error) {
	rbody, err := v.c.expectRetry(FEstimate, estimateReq{ViewID: v.id, Query: q}.encode(), FEstimateResult)
	if err != nil {
		return 0, err
	}
	resp, err := decodeEstimateResp(rbody)
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Append inserts a batch of records into the view's live write path. The
// server acks only after the batch is durable in the view's write-ahead
// log (when the view runs with one), and Append returns how many records
// it accepted: len(recs) on success, fewer if the batch failed partway
// (the accepted prefix is applied in the server's memview). Write
// rejections — a read-only view, or the ingest backlog over the server's
// cap — surface as *Error (check with IsWriteReject); the client stays
// usable and may retry after a flush. Write-rate throttles
// (CodeWriteThrottled) are retried automatically under the RetryPolicy:
// the server rejects a throttled batch before applying anything, so the
// replay cannot double-insert. No other append failure is auto-retried — a
// mid-batch failure may leave a prefix applied, and replaying it would
// double-insert.
func (v *RemoteView) Append(recs []record.Record) (int, error) {
	rbody, err := v.c.expectRetryIf(
		FAppend, appendReq{ViewID: v.id, Records: recs}.encode(), FAppendOK, IsWriteThrottled)
	if err != nil {
		return 0, err
	}
	ack, err := decodeWriteAck(rbody)
	if err != nil {
		return 0, err
	}
	return int(ack.N), nil
}

// Delete tombstones a batch of records in the view's live write path. The
// full records travel with the request, so deletes merge into delta levels
// without consulting the base view. Rejection, durability and
// throttle-retry semantics match Append.
func (v *RemoteView) Delete(recs []record.Record) (int, error) {
	rbody, err := v.c.expectRetryIf(
		FDeleteRecs, deleteRecsReq{ViewID: v.id, Records: recs}.encode(), FDeleteOK, IsWriteThrottled)
	if err != nil {
		return 0, err
	}
	ack, err := decodeWriteAck(rbody)
	if err != nil {
		return 0, err
	}
	return int(ack.N), nil
}

// Flush seals the view's in-memory write buffer and persists it as an
// on-disk delta level, returning how many buffered entries it covered.
// Flushing is idempotent (an empty buffer flushes to nothing), so transient
// failures are absorbed under the client's RetryPolicy.
func (v *RemoteView) Flush() (int, error) {
	rbody, err := v.c.expectRetry(FFlushView, flushViewReq{ViewID: v.id}.encode(), FFlushOK)
	if err != nil {
		return 0, err
	}
	ack, err := decodeWriteAck(rbody)
	if err != nil {
		return 0, err
	}
	return int(ack.N), nil
}

// Query opens an online sample stream for predicate q. Admission-control
// rejections surface as *Error (check with IsAdmissionReject); the client
// remains usable and may retry. A failed open allocates nothing, so
// transient storage faults hit while scanning the view's delta levels are
// absorbed by the retry policy.
func (v *RemoteView) Query(q record.Box) (*RemoteStream, error) {
	rbody, err := v.c.expectRetry(FOpenStream, openStreamReq{ViewID: v.id, Query: q}.encode(), FStreamOpened)
	if err != nil {
		return nil, err
	}
	resp, err := decodeStreamOpened(rbody)
	if err != nil {
		return nil, err
	}
	return &RemoteStream{v: v, id: resp.StreamID, batch: 256}, nil
}

// QueryAt is Query with the stream's randomness pinned to seed and the
// stream fast-forwarded to position pos (records to skip) before the first
// batch. The record sequence it serves is a pure function of (view state,
// query, seed), so the same call against any replica holding the same view
// bytes continues the same sample — the primitive fleet routers build
// hedging and live migration on. Pulls on the returned stream are
// position-checked: the server discards anything another replica already
// delivered, never re-sending it.
func (v *RemoteView) QueryAt(q record.Box, seed uint64, pos int64) (*RemoteStream, error) {
	if pos < 0 {
		pos = 0
	}
	req := openStreamReq{ViewID: v.id, Query: q, Seeded: true, Seed: seed, StartPos: pos}
	rbody, err := v.c.expectRetry(FOpenStream, req.encode(), FStreamOpened)
	if err != nil {
		return nil, err
	}
	resp, err := decodeStreamOpened(rbody)
	if err != nil {
		return nil, err
	}
	return &RemoteStream{v: v, id: resp.StreamID, batch: 256, checked: true, pos: pos}, nil
}

// SampleStream implements the aqp engine's Source interface, so a remote
// view can back an approximate aggregate query exactly like a local one.
func (v *RemoteView) SampleStream(q record.Box) (aqp.Stream, error) { return v.Query(q) }

var _ aqp.Source = (*RemoteView)(nil)

// RemoteStream is an online sample stream served over the network. Like
// the in-process Stream, every prefix of the records it returns is a
// uniform without-replacement sample of the predicate's matching set. It
// pulls batches lazily and buffers them client-side; SetBatchSize tunes
// the pull granularity. Safe for concurrent use.
type RemoteStream struct {
	v  *RemoteView
	id uint32

	mu     sync.Mutex
	buf    []record.Record // guarded by mu
	head   int             // guarded by mu
	eof    bool            // guarded by mu
	closed bool            // guarded by mu
	batch  int             // guarded by mu
	// checked marks a position-checked stream (opened with QueryAt): every
	// pull names the expected server position, and pos tracks the position
	// after the last batch — the stream's resume point on another replica.
	checked bool  // guarded by mu
	pos     int64 // guarded by mu
}

// Pos returns the stream's server position after the last pulled batch:
// how many records of the seeded sequence the server has served or
// skipped. Meaningful for position-checked streams (QueryAt); plain Query
// streams report the positions the server exports, or 0 against a server
// that predates position export. Records buffered client-side but not yet
// read are included — Pos is the wire position, not the read position.
func (s *RemoteStream) Pos() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// SetBatchSize sets how many records each network pull requests (the
// server clamps to its own cap). n <= 0 resets the default.
func (s *RemoteStream) SetBatchSize(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = 256
	}
	s.batch = n
}

// Next returns the next sample record, io.EOF once the predicate is
// exhausted, or ErrStreamClosed-equivalent failure after Close.
func (s *RemoteStream) Next() (record.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.head >= len(s.buf) {
		if s.eof {
			return record.Record{}, io.EOF
		}
		if s.closed {
			return record.Record{}, fmt.Errorf("server: stream closed")
		}
		if err := s.pullLocked(s.batch); err != nil {
			return record.Record{}, err
		}
	}
	rec := s.buf[s.head]
	s.head++
	if s.head >= len(s.buf) {
		s.buf, s.head = s.buf[:0], 0
	}
	return rec, nil
}

// NextBatch returns the next batch of sample records, pulling from the
// server if the local buffer is empty. It returns io.EOF once exhausted.
func (s *RemoteStream) NextBatch() ([]record.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.head < len(s.buf) {
		out := append([]record.Record(nil), s.buf[s.head:]...)
		s.buf, s.head = s.buf[:0], 0
		return out, nil
	}
	if s.eof {
		return nil, io.EOF
	}
	if s.closed {
		return nil, fmt.Errorf("server: stream closed")
	}
	if err := s.pullLocked(s.batch); err != nil {
		return nil, err
	}
	out := append([]record.Record(nil), s.buf[s.head:]...)
	s.buf, s.head = s.buf[:0], 0
	if len(out) == 0 && s.eof {
		return nil, io.EOF
	}
	return out, nil
}

// pullLocked fetches one batch from the server into the buffer, absorbing
// transient server faults under the client's RetryPolicy. Hard failures
// (CodeDegraded and the rest) surface to the caller; the stream itself
// stays usable, mirroring the in-process Stream's degraded semantics.
func (s *RemoteStream) pullLocked(max int) error {
	req := nextBatchReq{StreamID: s.id, Max: uint32(max), Pos: -1}
	if s.checked {
		req.Pos = s.pos
	}
	rbody, err := s.v.c.expectRetry(FNextBatch, req.encode(), FBatch)
	if err != nil {
		return err
	}
	resp, err := decodeBatchResp(rbody)
	if err != nil {
		return err
	}
	s.buf = append(s.buf, resp.Records...)
	if resp.Pos >= 0 {
		s.pos = resp.Pos
	} else {
		s.pos += int64(len(resp.Records))
	}
	if resp.EOF {
		s.eof = true
	}
	return nil
}

// PullAt performs one position-checked wire pull: up to max records of the
// stream's sequence starting at position pos, bypassing the client-side
// buffer entirely. The server fast-forwards (discarding records this caller
// already holds from another replica) when the stream is behind pos, and
// rejects with CodeStreamPosition (IsStreamPosition) when it is ahead — the
// caller then reopens at pos. It returns the records, whether the sequence
// is exhausted, and the stream's position after the batch. PullAt is the
// fleet router's primitive for hedged reads and migration; do not mix it
// with the buffered Next/NextBatch on the same stream.
func (s *RemoteStream) PullAt(pos int64, max int) ([]record.Record, bool, int64, error) {
	if max <= 0 {
		max = 256
	}
	req := nextBatchReq{StreamID: s.id, Max: uint32(max), Pos: pos}
	rbody, err := s.v.c.expectRetry(FNextBatch, req.encode(), FBatch)
	if err != nil {
		return nil, false, pos, err
	}
	resp, err := decodeBatchResp(rbody)
	if err != nil {
		return nil, false, pos, err
	}
	end := resp.Pos
	if end < 0 {
		end = pos + int64(len(resp.Records))
	}
	s.mu.Lock()
	s.pos = end
	if resp.EOF {
		s.eof = true
	}
	s.mu.Unlock()
	return resp.Records, resp.EOF, end, nil
}

// Sample collects up to n records (fewer if the predicate exhausts first),
// mirroring the in-process Stream.Sample.
func (s *RemoteStream) Sample(n int) ([]record.Record, error) {
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([]record.Record, 0, capHint)
	for len(out) < n {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Close cancels the stream on the server, releasing its admission slot.
// It is idempotent; cancelling a stream the server already reaped or
// auto-closed at EOF succeeds.
func (s *RemoteStream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	alreadyDone := s.eof
	s.mu.Unlock()
	if alreadyDone {
		return nil // the server retired the stream at EOF
	}
	_, err := s.v.c.expect(FCancel, cancelReq{StreamID: s.id}.encode(), FCancelOK)
	if se, ok := err.(*Error); ok && (se.Code == CodeUnknownStream || se.Code == CodeStreamReaped) {
		return nil
	}
	return err
}
