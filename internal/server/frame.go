// Package server is the network serving layer for online sample streams:
// it multiplexes many concurrent client sessions over a shared set of
// sampleview.Views, speaking a length-prefixed binary frame protocol over
// TCP (or any net.Conn).
//
// The paper's product is an *online* sample stream — results that improve
// the longer the client listens — and that shape dictates the protocol:
// a client opens a view, opens any number of streams against it, pulls
// batches at its own pace, and cancels the moment its estimate is good
// enough. The server performs admission control (server-wide and
// per-connection stream caps, bounded batch sizes) so that heavy traffic
// degrades into typed rejections rather than unbounded buffering, reaps
// sessions that go idle on the simulated disk clock, and drains in-flight
// batches on shutdown.
//
// # Wire format
//
// Every message is one frame:
//
//	uint32 length (little endian)   payload length, including the type byte
//	uint8  type                     FrameType
//	...                             body, length-1 bytes
//
// A frame's length must be in [1, MaxFrame]; anything else is a protocol
// error and closes the connection. All integers are little endian; strings
// are uint16-length-prefixed UTF-8; records travel in their 100-byte
// storage encoding (internal/record); boxes as a dimension count followed
// by per-dimension [lo, hi] int64 pairs. Requests and responses alternate
// strictly on a connection: the server writes exactly one response frame
// per request frame, so a client may multiplex many streams over one
// connection with a single in-flight request.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// errFrameLength marks a length-prefix protocol violation, as opposed to a
// transport failure; the server's read loop counts only these as bad frames.
var errFrameLength = errors.New("server: frame length outside bounds")

// MaxFrame is the largest legal frame payload (type byte + body) in bytes.
// Decoders reject larger length prefixes before allocating, so a corrupt
// or hostile length cannot force a large allocation.
const MaxFrame = 1 << 20

// headerSize is the length prefix size in bytes.
const headerSize = 4

// FrameType identifies a frame's meaning. Client-to-server types are
// requests; server-to-client types are responses.
type FrameType uint8

const (
	// Client → server.
	FOpenView    FrameType = 0x01 // body: name — resolve a served view by name
	FOpenStream  FrameType = 0x02 // body: viewID, box — start an online sample stream
	FNextBatch   FrameType = 0x03 // body: streamID, max — pull up to max records
	FEstimate    FrameType = 0x04 // body: viewID, box — estimate matching-record count
	FCancel      FrameType = 0x05 // body: streamID — close a stream early
	FStats       FrameType = 0x06 // body: empty — snapshot server/session counters
	FListViews   FrameType = 0x07 // body: empty — enumerate servable views
	FAppend      FrameType = 0x08 // body: viewID, records — ingest into the live write path
	FDeleteRecs  FrameType = 0x09 // body: viewID, records — tombstone records in the write path
	FFlushView   FrameType = 0x0a // body: viewID — persist the memview as a delta level
	FSetTenant   FrameType = 0x0b // body: tenant — attribute this connection's quota usage to a tenant
	FReplicaInfo FrameType = 0x0c // body: empty — identify the replica and its live load

	// Server → client.
	FViewInfo          FrameType = 0x81 // body: viewID, dims, height, count
	FStreamOpened      FrameType = 0x82 // body: streamID
	FBatch             FrameType = 0x83 // body: streamID, eof, records
	FEstimateResult    FrameType = 0x84 // body: float64 count
	FCancelOK          FrameType = 0x85 // body: streamID
	FStatsResult       FrameType = 0x86 // body: encoded StatsSnapshot
	FViewList          FrameType = 0x87 // body: view-list entries (name, shape, health)
	FAppendOK          FrameType = 0x88 // body: viewID, records accepted
	FDeleteOK          FrameType = 0x89 // body: viewID, tombstones recorded
	FFlushOK           FrameType = 0x8a // body: viewID, buffered entries persisted
	FTenantOK          FrameType = 0x8b // body: tenant — per-tenant accounting now in effect
	FReplicaInfoResult FrameType = 0x8c // body: replica id, open streams, stream cap, draining flag
	FError             FrameType = 0xff // body: code, message
)

func (t FrameType) String() string {
	switch t {
	case FOpenView:
		return "OpenView"
	case FOpenStream:
		return "OpenStream"
	case FNextBatch:
		return "NextBatch"
	case FEstimate:
		return "Estimate"
	case FCancel:
		return "Cancel"
	case FStats:
		return "Stats"
	case FListViews:
		return "ListViews"
	case FAppend:
		return "Append"
	case FDeleteRecs:
		return "DeleteRecs"
	case FFlushView:
		return "FlushView"
	case FSetTenant:
		return "SetTenant"
	case FReplicaInfo:
		return "ReplicaInfo"
	case FViewInfo:
		return "ViewInfo"
	case FStreamOpened:
		return "StreamOpened"
	case FBatch:
		return "Batch"
	case FEstimateResult:
		return "EstimateResult"
	case FCancelOK:
		return "CancelOK"
	case FStatsResult:
		return "StatsResult"
	case FViewList:
		return "ViewList"
	case FAppendOK:
		return "AppendOK"
	case FDeleteOK:
		return "DeleteOK"
	case FFlushOK:
		return "FlushOK"
	case FTenantOK:
		return "TenantOK"
	case FReplicaInfoResult:
		return "ReplicaInfoResult"
	case FError:
		return "Error"
	default:
		return fmt.Sprintf("FrameType(0x%02x)", uint8(t))
	}
}

// AppendFrame appends one encoded frame carrying the given type and body to
// dst and returns the extended slice. It fails if the frame would exceed
// MaxFrame.
func AppendFrame(dst []byte, t FrameType, body []byte) ([]byte, error) {
	n := len(body) + 1
	if n > MaxFrame {
		return dst, fmt.Errorf("server: frame payload %d bytes exceeds limit %d", n, MaxFrame)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, byte(t))
	return append(dst, body...), nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t FrameType, body []byte) error {
	buf := make([]byte, 0, headerSize+1+len(body))
	buf, err := AppendFrame(buf, t, body)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("server: writing %v frame: %w", t, err)
	}
	return nil
}

// ReadFrame reads one frame from r. The returned body slice is freshly
// allocated (at most MaxFrame bytes — the length prefix is validated before
// allocating). io.EOF is returned untouched when the reader is exhausted at
// a frame boundary, so callers can distinguish a clean close from a torn
// frame (io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("server: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d outside [1, %d]", errFrameLength, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("server: reading %d-byte frame payload: %w", n, err)
	}
	return FrameType(payload[0]), payload[1:], nil
}

// DecodeFrame decodes the first frame of b without copying: body aliases b,
// and rest is the remainder after the frame. The length prefix is validated
// against both MaxFrame and the bytes actually available, so DecodeFrame
// never allocates and never reads past b.
func DecodeFrame(b []byte) (t FrameType, body, rest []byte, err error) {
	if len(b) < headerSize {
		return 0, nil, nil, fmt.Errorf("server: truncated frame header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b[:headerSize])
	if n == 0 || n > MaxFrame {
		return 0, nil, nil, fmt.Errorf("%w: %d outside [1, %d]", errFrameLength, n, MaxFrame)
	}
	if uint32(len(b)-headerSize) < n {
		return 0, nil, nil, fmt.Errorf("server: frame length %d exceeds available %d bytes", n, len(b)-headerSize)
	}
	payload := b[headerSize : headerSize+int(n)]
	return FrameType(payload[0]), payload[1:], b[headerSize+int(n):], nil
}
