package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// serverCounters is the server's live counter set. All fields are atomics:
// the hot request path updates them without taking the server lock, and
// sums commute, so snapshots are consistent enough for observability
// without stalling serving.
type serverCounters struct {
	ConnsAccepted    atomic.Int64
	ConnsClosed      atomic.Int64
	ConnsRejected    atomic.Int64
	StreamsOpened    atomic.Int64
	StreamsClosed    atomic.Int64 // cancel + EOF + session teardown
	StreamsReaped    atomic.Int64
	BatchesServed    atomic.Int64
	RecordsServed    atomic.Int64
	EstimatesServed  atomic.Int64
	RejectedServer   atomic.Int64 // server-wide stream cap
	RejectedConn     atomic.Int64 // per-connection stream cap
	RejectedDrain    atomic.Int64 // refused because shutting down
	BadFrames        atomic.Int64
	BytesRead        atomic.Int64
	BytesWritten     atomic.Int64
	SimIONanos       atomic.Int64 // simulated I/O time charged by served streams
	TransientErrors  atomic.Int64 // CodeTransient frames sent (storage retry budget exhausted)
	DegradedErrors   atomic.Int64 // CodeDegraded frames sent (leaves permanently lost)
	MaintJobs        atomic.Int64 // catalog background jobs run between request bursts
	MaintJobErrors   atomic.Int64 // catalog background jobs that failed
	RecordsIngested  atomic.Int64 // records accepted by append frames
	RecordsDeleted   atomic.Int64 // tombstones recorded by delete frames
	FlushesServed    atomic.Int64 // explicit flush frames honored
	RejectedWrites   atomic.Int64 // CodeReadOnly + CodeWriteBacklog rejections
	RejectedThrottle atomic.Int64 // CodeWriteThrottled rejections (rate admission)
	RejectedTenant   atomic.Int64 // CodeTenantStreams rejections (per-tenant stream cap)
}

// sessionCounters is the per-session slice of the same surface.
type sessionCounters struct {
	StreamsOpened atomic.Int64
	StreamsClosed atomic.Int64
	StreamsReaped atomic.Int64
	Batches       atomic.Int64
	Records       atomic.Int64
	Rejections    atomic.Int64
	BytesRead     atomic.Int64
	BytesWritten  atomic.Int64
	SimIONanos    atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the server's observability
// surface: per-server totals plus one row per live session. It travels in
// FStatsResult frames and renders as a text dump.
type StatsSnapshot struct {
	OpenConns       int64
	OpenStreams     int64
	ConnsAccepted   int64
	ConnsRejected   int64
	StreamsOpened   int64
	StreamsClosed   int64
	StreamsReaped   int64
	BatchesServed   int64
	RecordsServed   int64
	EstimatesServed int64
	RejectedServer  int64
	RejectedConn    int64
	RejectedDrain   int64
	BadFrames       int64
	BytesRead       int64
	BytesWritten    int64
	SimIO           time.Duration
	TransientErrors int64
	DegradedErrors  int64
	MaintJobs       int64
	MaintJobErrors  int64

	// Write-path counters (wire version 2 fields; older servers omit them
	// and the decoder leaves them zero). The first four count requests; the
	// last four are gauges aggregated over the servable views at snapshot
	// time: buffered memview entries, pending tombstones, the deepest delta
	// ladder, and total compactions run since the views opened.
	RecordsIngested   int64
	RecordsDeleted    int64
	FlushesServed     int64
	RejectedWrites    int64
	MemViewRecords    int64
	TombstonesPending int64
	DeltaLevels       int64
	CompactionsRun    int64

	// Durability counters (wire version 3 fields). RejectedThrottle counts
	// write-rate rejections; the WAL gauges aggregate over the servable
	// views: logged bytes, group-commit fsyncs, operations replayed by crash
	// recovery at open, and live log segments.
	RejectedThrottle int64
	WALBytes         int64
	WALFsyncs        int64
	WALReplayed      int64
	WALSegments      int64

	// Fleet counters (wire version 4 fields). A replica fills the first
	// two: per-tenant stream-cap rejections and live tenant accounting
	// buckets. A fleet router answering a stats request fills the rest:
	// hedged pulls issued, hedges whose second replica answered first,
	// streams migrated to a surviving replica, and replicas currently
	// considered live.
	RejectedTenant int64
	TenantsActive  int64
	HedgedReads    int64
	HedgeWins      int64
	Migrations     int64
	ReplicasLive   int64

	Sessions []SessionSnapshot
}

// SessionSnapshot is one live session's counters.
type SessionSnapshot struct {
	ID            uint64
	OpenStreams   int64
	StreamsOpened int64
	StreamsReaped int64
	Batches       int64
	Records       int64
	Rejections    int64
	BytesRead     int64
	BytesWritten  int64
	SimIO         time.Duration
}

// serverFieldCount and sessionFieldCount version the wire encoding: a
// snapshot is encoded as a field count followed by that many int64s, per
// scope, so decoders can stay compatible with older servers that send
// fewer fields. Fields 21..28 are the write-path counters added with the
// ingest frames (wire version 2 of the stats snapshot); fields 29..33 are
// the durability counters added with the write-ahead log (wire version 3);
// fields 34..39 are the fleet counters added with the serving tier (wire
// version 4).
const (
	serverFieldCount  = 40
	sessionFieldCount = 10
)

func (s *StatsSnapshot) serverFields() []int64 {
	return []int64{
		s.OpenConns, s.OpenStreams, s.ConnsAccepted, s.ConnsRejected,
		s.StreamsOpened, s.StreamsClosed, s.StreamsReaped,
		s.BatchesServed, s.RecordsServed, s.EstimatesServed,
		s.RejectedServer, s.RejectedConn, s.RejectedDrain, s.BadFrames,
		s.BytesRead, s.BytesWritten, int64(s.SimIO),
		s.TransientErrors, s.DegradedErrors,
		s.MaintJobs, s.MaintJobErrors,
		s.RecordsIngested, s.RecordsDeleted, s.FlushesServed, s.RejectedWrites,
		s.MemViewRecords, s.TombstonesPending, s.DeltaLevels, s.CompactionsRun,
		s.RejectedThrottle, s.WALBytes, s.WALFsyncs, s.WALReplayed, s.WALSegments,
		s.RejectedTenant, s.TenantsActive,
		s.HedgedReads, s.HedgeWins, s.Migrations, s.ReplicasLive,
	}
}

func (s *StatsSnapshot) setServerFields(f []int64) {
	s.OpenConns, s.OpenStreams, s.ConnsAccepted, s.ConnsRejected = f[0], f[1], f[2], f[3]
	s.StreamsOpened, s.StreamsClosed, s.StreamsReaped = f[4], f[5], f[6]
	s.BatchesServed, s.RecordsServed, s.EstimatesServed = f[7], f[8], f[9]
	s.RejectedServer, s.RejectedConn, s.RejectedDrain, s.BadFrames = f[10], f[11], f[12], f[13]
	s.BytesRead, s.BytesWritten, s.SimIO = f[14], f[15], time.Duration(f[16])
	s.TransientErrors, s.DegradedErrors = f[17], f[18]
	s.MaintJobs, s.MaintJobErrors = f[19], f[20]
	s.RecordsIngested, s.RecordsDeleted, s.FlushesServed, s.RejectedWrites = f[21], f[22], f[23], f[24]
	s.MemViewRecords, s.TombstonesPending, s.DeltaLevels, s.CompactionsRun = f[25], f[26], f[27], f[28]
	s.RejectedThrottle, s.WALBytes, s.WALFsyncs, s.WALReplayed, s.WALSegments = f[29], f[30], f[31], f[32], f[33]
	s.RejectedTenant, s.TenantsActive = f[34], f[35]
	s.HedgedReads, s.HedgeWins, s.Migrations, s.ReplicasLive = f[36], f[37], f[38], f[39]
}

func (s *SessionSnapshot) fields() []int64 {
	return []int64{
		int64(s.ID), s.OpenStreams, s.StreamsOpened, s.StreamsReaped,
		s.Batches, s.Records, s.Rejections,
		s.BytesRead, s.BytesWritten, int64(s.SimIO),
	}
}

func (s *SessionSnapshot) setFields(f []int64) {
	s.ID = uint64(f[0])
	s.OpenStreams, s.StreamsOpened, s.StreamsReaped = f[1], f[2], f[3]
	s.Batches, s.Records, s.Rejections = f[4], f[5], f[6]
	s.BytesRead, s.BytesWritten, s.SimIO = f[7], f[8], time.Duration(f[9])
}

func (s *StatsSnapshot) encode() []byte {
	b := appendU32(nil, serverFieldCount)
	for _, v := range s.serverFields() {
		b = appendI64(b, v)
	}
	b = appendU32(b, uint32(len(s.Sessions)))
	for i := range s.Sessions {
		b = appendU32(b, sessionFieldCount)
		for _, v := range s.Sessions[i].fields() {
			b = appendI64(b, v)
		}
	}
	return b
}

// consumeFields reads a count-prefixed int64 vector, padding or truncating
// to want fields; the count is validated against the available bytes before
// allocating.
func consumeFields(b []byte, want int) ([]int64, []byte, error) {
	n, b, err := consumeU32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) < uint64(n)*8 {
		return nil, nil, fmt.Errorf("server: stats claims %d fields but only %d bytes follow", n, len(b))
	}
	out := make([]int64, want)
	for i := 0; i < int(n); i++ {
		var v int64
		v, b, _ = consumeI64(b)
		if i < want {
			out[i] = v
		}
	}
	return out, b, nil
}

func decodeStatsSnapshot(b []byte) (*StatsSnapshot, error) {
	var s StatsSnapshot
	f, b, err := consumeFields(b, serverFieldCount)
	if err != nil {
		return nil, err
	}
	s.setServerFields(f)
	n, b, err := consumeU32(b)
	if err != nil {
		return nil, err
	}
	// Each session row costs at least 4 bytes (its field count), so n is
	// bounded by the remaining input before any allocation happens.
	if uint64(len(b)) < uint64(n)*4 {
		return nil, fmt.Errorf("server: stats claims %d sessions but only %d bytes follow", n, len(b))
	}
	s.Sessions = make([]SessionSnapshot, n)
	for i := range s.Sessions {
		var f []int64
		if f, b, err = consumeFields(b, sessionFieldCount); err != nil {
			return nil, err
		}
		s.Sessions[i].setFields(f)
	}
	if len(b) != 0 {
		return nil, errTrailing
	}
	return &s, nil
}

// Dump writes the snapshot as an svinspect-style text report.
func (s *StatsSnapshot) Dump(w io.Writer) {
	fmt.Fprintf(w, "connections:     %d open, %d accepted, %d rejected\n",
		s.OpenConns, s.ConnsAccepted, s.ConnsRejected)
	fmt.Fprintf(w, "streams:         %d open, %d opened, %d closed, %d reaped\n",
		s.OpenStreams, s.StreamsOpened, s.StreamsClosed, s.StreamsReaped)
	fmt.Fprintf(w, "served:          %d records in %d batches, %d estimates\n",
		s.RecordsServed, s.BatchesServed, s.EstimatesServed)
	fmt.Fprintf(w, "rejections:      %d server-cap, %d conn-cap, %d draining\n",
		s.RejectedServer, s.RejectedConn, s.RejectedDrain)
	fmt.Fprintf(w, "wire:            %d bytes in, %d bytes out, %d bad frames\n",
		s.BytesRead, s.BytesWritten, s.BadFrames)
	fmt.Fprintf(w, "simulated I/O:   %v charged by served streams\n", s.SimIO)
	fmt.Fprintf(w, "fault frames:    %d transient, %d degraded\n",
		s.TransientErrors, s.DegradedErrors)
	fmt.Fprintf(w, "maintenance:     %d jobs run, %d failed\n",
		s.MaintJobs, s.MaintJobErrors)
	fmt.Fprintf(w, "ingest:          %d records appended, %d deleted, %d flushes, %d write rejections, %d throttled\n",
		s.RecordsIngested, s.RecordsDeleted, s.FlushesServed, s.RejectedWrites, s.RejectedThrottle)
	fmt.Fprintf(w, "write path:      %d buffered, %d tombstones pending, %d delta levels, %d compactions\n",
		s.MemViewRecords, s.TombstonesPending, s.DeltaLevels, s.CompactionsRun)
	fmt.Fprintf(w, "durability:      %d wal bytes, %d fsyncs, %d ops replayed, %d segments\n",
		s.WALBytes, s.WALFsyncs, s.WALReplayed, s.WALSegments)
	fmt.Fprintf(w, "fleet:           %d tenants, %d tenant-cap rejections, %d hedged (%d wins), %d migrations, %d replicas live\n",
		s.TenantsActive, s.RejectedTenant, s.HedgedReads, s.HedgeWins, s.Migrations, s.ReplicasLive)
	for i := range s.Sessions {
		ss := &s.Sessions[i]
		fmt.Fprintf(w, "session %-6d   %d open, %d opened (%d reaped), %d records / %d batches, %d rej, %dB in / %dB out, sim %v\n",
			ss.ID, ss.OpenStreams, ss.StreamsOpened, ss.StreamsReaped,
			ss.Records, ss.Batches, ss.Rejections, ss.BytesRead, ss.BytesWritten, ss.SimIO)
	}
}
