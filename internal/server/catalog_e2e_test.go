package server

import (
	"io"
	"net"
	"testing"
	"time"

	"sampleview/internal/catalog"
	"sampleview/internal/record"
	"sampleview/internal/shard"
)

// startCatalogServer serves an in-memory catalog hosting one sharded view.
func startCatalogServer(t *testing.T, cfg Config, policy catalog.Policy, name string, recs []record.Record, opts shard.Options) (*Server, *catalog.Catalog, *shard.View, string) {
	t.Helper()
	cat, err := catalog.New("", shard.Options{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	v, err := cat.Register(name, recs, opts)
	if err != nil {
		t.Fatal(err)
	}

	srv := New(cfg)
	srv.SetCatalog(cat)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after Shutdown, want nil", err)
		}
	})
	return srv, cat, v, ln.Addr().String()
}

// TestCatalogServedByName proves the tentpole wiring end to end: a client
// lists the hosted catalog's views, opens one by name, and drains a merged
// K-way stream that returns exactly the matching set.
func TestCatalogServedByName(t *testing.T) {
	recs := genRecords(8000, 11)
	_, _, _, addr := startCatalogServer(t, Config{}, catalog.Policy{}, "orders",
		recs, shard.Options{K: 4, Seed: 3})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	views, err := cl.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 {
		t.Fatalf("ListViews = %+v, want one entry", views)
	}
	e := views[0]
	if e.Name != "orders" || !e.Sharded || e.K != 4 || e.Count != 8000 || e.Health != "ok" {
		t.Fatalf("view entry = %+v", e)
	}
	if e.Partition != "hash" {
		t.Fatalf("partition = %q, want hash", e.Partition)
	}

	rv, err := cl.OpenView("orders")
	if err != nil {
		t.Fatal(err)
	}
	if rv.Count() != 8000 {
		t.Fatalf("remote Count = %d", rv.Count())
	}
	if _, err := cl.OpenView("nope"); !errIsCode(err, CodeUnknownView) {
		t.Fatalf("OpenView(nope) err = %v, want CodeUnknownView", err)
	}

	q := record.Box1D(0, 1<<19)
	est, err := rv.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]record.Record)
	for _, r := range recs {
		if q.ContainsRecord(&r) {
			want[r.Seq] = r
		}
	}
	if ratio := est / float64(len(want)); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("estimate %.1f vs true %d", est, len(want))
	}

	s, err := rv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]record.Record)
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := got[rec.Seq]; dup {
			t.Fatalf("duplicate record seq %d", rec.Seq)
		}
		got[rec.Seq] = rec
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d", len(got), len(want))
	}
	for seq := range want {
		if _, ok := got[seq]; !ok {
			t.Fatalf("matching record seq %d never served", seq)
		}
	}
}

func errIsCode(err error, code uint16) bool {
	se, ok := err.(*Error)
	return ok && se.Code == code
}

// TestShardDeathDegradesOverWire kills one shard of a served view and
// checks the failure semantics across the protocol: the client sees typed
// CodeDegraded frames, keeps the stream, and still receives every matching
// record the surviving shards hold.
func TestShardDeathDegradesOverWire(t *testing.T) {
	recs := genRecords(6000, 13)
	srv, _, v, addr := startCatalogServer(t, Config{}, catalog.Policy{}, "orders",
		recs, shard.Options{K: 4, Seed: 5})

	const dead = 2
	v.KillShard(dead)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rv, err := cl.OpenView("orders")
	if err != nil {
		t.Fatal(err)
	}
	q := record.FullBox(1)
	s, err := rv.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[uint64]record.Record)
	degraded := 0
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !IsDegraded(err) {
				t.Fatalf("stream error %v, want typed degraded frames only", err)
			}
			degraded++
			if degraded > 10_000 {
				t.Fatal("stream never finished degrading")
			}
			continue
		}
		got[rec.Seq] = rec
	}
	if degraded == 0 {
		t.Fatal("dead shard produced no degraded frames")
	}
	for _, r := range recs {
		fromDead := v.Route(r) == dead
		_, served := got[r.Seq]
		if fromDead && served {
			t.Fatalf("record seq %d served from the dead shard", r.Seq)
		}
		if !fromDead && !served {
			t.Fatalf("surviving-shard record seq %d never served", r.Seq)
		}
	}
	if n := srv.Snapshot().DegradedErrors; n == 0 {
		t.Fatalf("server counted %d degraded frames", n)
	}
}

// TestMaintenanceRunsBetweenBursts crosses a view's compaction threshold,
// then shows the server folding the pending appends in the idle gap after
// a request burst — without any client asking for it.
func TestMaintenanceRunsBetweenBursts(t *testing.T) {
	recs := genRecords(4000, 17)
	srv, cat, v, addr := startCatalogServer(t, Config{}, catalog.Policy{CompactThreshold: 32}, "orders",
		recs, shard.Options{K: 2, Seed: 7})

	extra := genRecords(40, 99)
	for i := range extra {
		extra[i].Seq += 1 << 40
		v.Append(extra[i])
	}
	infos := cat.List()
	if infos[0].Health != catalog.HealthStale {
		t.Fatalf("health before maintenance = %q, want stale", infos[0].Health)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Any request will do: when its response flushes and the server goes
		// idle, the due compaction job gets its window.
		if _, err := cl.ServerStats(); err != nil {
			t.Fatal(err)
		}
		if srv.Snapshot().MaintJobs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("maintenance never ran between request bursts")
		}
		time.Sleep(time.Millisecond)
	}
	if n := v.PendingAppends(); n != 0 {
		t.Fatalf("%d appends still pending after background compaction", n)
	}
	views, err := cl.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if views[0].Health != "ok" {
		t.Fatalf("health after maintenance = %q, want ok", views[0].Health)
	}
	snap, err := cl.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.MaintJobs == 0 || snap.MaintJobErrors != 0 {
		t.Fatalf("snapshot maintenance counters = %d run / %d failed", snap.MaintJobs, snap.MaintJobErrors)
	}
}

// TestStaticAndCatalogViewsCoexist registers one view statically and one
// through the catalog and checks both serve and both are listed.
func TestStaticAndCatalogViewsCoexist(t *testing.T) {
	recs := genRecords(3000, 23)
	srv, _, _, addr := startCatalogServer(t, Config{}, catalog.Policy{}, "sharded",
		recs, shard.Options{K: 2, Seed: 9})
	_, lv, _, _ := startServer(t, Config{}, "plain", recs)
	_ = lv
	// Reuse the first server: register the plain view on it too.
	srv.AddView("plain", lv)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	views, err := cl.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].Name != "plain" || views[1].Name != "sharded" {
		t.Fatalf("ListViews = %+v", views)
	}
	if views[0].Sharded || !views[1].Sharded {
		t.Fatalf("sharded flags wrong: %+v", views)
	}
	for _, name := range []string{"plain", "sharded"} {
		rv, err := cl.OpenView(name)
		if err != nil {
			t.Fatalf("OpenView(%s): %v", name, err)
		}
		s, err := rv.Query(record.Box1D(0, 1<<18))
		if err != nil {
			t.Fatalf("Query(%s): %v", name, err)
		}
		batch, err := s.Sample(100)
		if err != nil {
			t.Fatalf("Sample(%s): %v", name, err)
		}
		if len(batch) == 0 {
			t.Fatalf("view %s served no records", name)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close(%s): %v", name, err)
		}
	}
}
