package server

import (
	"encoding/binary"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"sampleview"
	"sampleview/internal/iosim"
	"sampleview/internal/record"
)

// smallPageOpts shrinks the simulated disk's pages so modest test views
// span enough pages for per-page fault rates to bite.
func smallPageOpts(seed uint64) sampleview.Options {
	m := iosim.DefaultModel()
	m.PageSize = 2048
	m.RandomRead = time.Millisecond
	m.SequentialRead = 100 * time.Microsecond
	return sampleview.Options{Seed: seed, DiskModel: m}
}

// startFaultServer serves one small-page view and returns the server, the
// view (for fault injection) and the listener address.
func startFaultServer(t *testing.T, cfg Config, recs []record.Record) (*Server, *sampleview.View, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.view")
	v, err := sampleview.CreateFromSlice(path, recs, smallPageOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })

	srv := New(cfg)
	srv.AddView("sale", v)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after Shutdown, want nil", err)
		}
	})
	return srv, v, ln.Addr().String()
}

// TestServedTransientRetryTransparent is the mid-stream resilience
// criterion: under a fault profile whose transient bursts outlive the
// storage layer's retry budget, typed CodeTransient frames reach the
// client, the client's seeded-backoff retry absorbs every one, and the
// delivered record sequence is byte-identical to a fault-free local
// stream over the same view.
func TestServedTransientRetryTransparent(t *testing.T) {
	recs := genRecords(8000, 5)
	srv, v, addr := startFaultServer(t, Config{}, recs)

	// Fault-free local baseline, drained before faults are injected.
	q := record.Box1D(0, 1<<19)
	local, err := v.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Sample(len(recs))
	if err != nil {
		t.Fatal(err)
	}

	plan, err := sampleview.FaultProfile("flaky-deep", 99)
	if err != nil {
		t.Fatal(err)
	}
	v.InjectFaults(plan)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{Seed: 1})
	var waits []time.Duration
	cl.mu.Lock()
	cl.sleep = func(d time.Duration) { waits = append(waits, d) }
	cl.mu.Unlock()

	rv, err := cl.OpenView("sale")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []record.Record
	for {
		rec, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("client saw an error despite transient retry: %v", err)
		}
		got = append(got, rec)
	}
	if len(got) != len(want) {
		t.Fatalf("served %d records, local fault-free stream %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs from the fault-free baseline", i)
		}
	}
	if cl.Retries() == 0 {
		t.Fatal("flaky-deep forced no client retries; the profile never escaped the storage layer")
	}
	if int64(len(waits)) != cl.Retries() {
		t.Fatalf("client slept %d times for %d retries", len(waits), cl.Retries())
	}
	for i, d := range waits {
		if d <= 0 || d > 250*time.Millisecond {
			t.Fatalf("backoff wait %d = %v outside (0, 250ms]", i, d)
		}
	}
	snap := srv.Snapshot()
	if snap.TransientErrors == 0 {
		t.Fatal("server sent no CodeTransient frames")
	}
	if snap.DegradedErrors != 0 {
		t.Fatalf("transient-only profile produced %d degraded frames", snap.DegradedErrors)
	}
}

// TestRetryBackoffDeterministic pins the seeded jitter: two clients with
// the same RetryPolicy seed produce identical backoff schedules.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Seed: 42}.withDefaults()
	schedule := func() []time.Duration {
		c := NewClient(nil)
		c.SetRetryPolicy(RetryPolicy{Seed: 42})
		var out []time.Duration
		for attempt := 0; attempt < 8; attempt++ {
			c.mu.Lock()
			j := c.rng.Uint64()
			c.mu.Unlock()
			out = append(out, p.backoff(attempt, j))
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs across identically seeded clients: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= 0 || a[i] > p.MaxDelay {
			t.Fatalf("backoff %d = %v outside (0, %v]", i, a[i], p.MaxDelay)
		}
	}
	if a[0] >= a[6] {
		t.Fatalf("backoff should grow: first %v, seventh %v", a[0], a[6])
	}
}

// TestServedCorruptionTypedErrorNotConnDrop is the hard-failure
// criterion: a sticky bad page surfaces to the client as a clean typed
// CodeDegraded error frame — never garbage records, never a dropped
// connection — and the stream keeps serving the surviving leaves to EOF.
func TestServedCorruptionTypedErrorNotConnDrop(t *testing.T) {
	recs := genRecords(8000, 9)
	byseq := make(map[uint64]record.Record, len(recs))
	for _, r := range recs {
		byseq[r.Seq] = r
	}
	srv, v, addr := startFaultServer(t, Config{}, recs)
	plan := iosim.FaultPlan{Seed: 3, StickyRate: 0.02, TransientRate: 0.05, TransientBurst: 2}
	v.InjectFaults(plan)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{Seed: 2})
	cl.mu.Lock()
	cl.sleep = func(time.Duration) {}
	cl.mu.Unlock()

	rv, err := cl.OpenView("sale")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rv.Query(record.FullBox(1))
	if err != nil {
		t.Fatal(err)
	}
	var got []record.Record
	degraded := 0
	for {
		rec, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !IsDegraded(err) {
				t.Fatalf("stream error is not a typed degraded frame: %v", err)
			}
			degraded++
			continue // the stream must stay serviceable
		}
		got = append(got, rec)
	}
	if degraded == 0 {
		t.Skip("sticky plan hit no leaf pages at this seed; raise the rate")
	}
	seen := make(map[uint64]bool, len(got))
	for i := range got {
		want, ok := byseq[got[i].Seq]
		if !ok || got[i] != want {
			t.Fatalf("served a record that is not in the source relation: %+v", got[i])
		}
		if seen[got[i].Seq] {
			t.Fatalf("record seq %d served twice", got[i].Seq)
		}
		seen[got[i].Seq] = true
	}
	if len(got) >= len(recs) {
		t.Fatal("degraded stream cannot have served the full relation")
	}
	// The connection survived: further requests on the same client work.
	snap, err := cl.ServerStats()
	if err != nil {
		t.Fatalf("connection unusable after degraded errors: %v", err)
	}
	if snap.DegradedErrors == 0 {
		t.Fatal("server counted no degraded frames")
	}
	if snap.OpenConns == 0 {
		t.Fatal("server dropped the connection on a storage fault")
	}
	_ = srv
}

// TestRequestTimeoutStalledPeer verifies the per-request deadline: a peer
// that sends a frame header and then stalls mid-frame is disconnected
// once RequestTimeout elapses, while the wait for a fresh request stays
// unbounded.
func TestRequestTimeoutStalledPeer(t *testing.T) {
	recs := genRecords(500, 1)
	_, _, addr := startFaultServer(t, Config{RequestTimeout: 100 * time.Millisecond}, recs)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Idle longer than the timeout before sending anything: the connection
	// must survive, because no request is in flight yet.
	time.Sleep(250 * time.Millisecond)
	cl := NewClient(nc)
	if _, err := cl.OpenView("sale"); err != nil {
		t.Fatalf("idle connection was killed before any request: %v", err)
	}

	// Now stall mid-frame: header promising 64 bytes, then silence.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 64)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil || err == io.ErrNoProgress {
		t.Fatal("stalled request was not disconnected")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not enforce the request deadline within 5s")
	}
}
