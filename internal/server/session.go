package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sampleview"
	"sampleview/internal/shard"
)

// servedStream is one open stream of one session. The underlying view
// stream (unsharded or sharded) is internally synchronized, so the request
// path and the idle reaper may race on it freely; lastActive and simSeen
// are atomics for the same reason.
type servedStream struct {
	id   uint32
	view *servedView
	s    ViewStream
	// lastActive is the view's simulated time (nanoseconds) when the stream
	// last served a request; the reaper compares it against the view's
	// current simulated clock.
	lastActive atomic.Int64
	// simSeen is the portion of the stream's own simulated I/O time already
	// folded into the session and server counters.
	simSeen atomic.Int64
	// pos is the stream's position: records served (or skipped by a seeded
	// open's fast-forward) so far. Exported in every batch response — it is
	// the canonical resume point a fleet router migrates and hedges on.
	pos atomic.Int64

	// deferredMu guards deferred.
	deferredMu sync.Mutex
	// deferred is a hard stream failure observed while a partial batch was
	// being delivered; it is surfaced as a typed error frame on the
	// stream's next request so the records already sampled are never
	// dropped and the failure is never lost.
	deferred error // guarded by deferredMu
}

// stashErr defers a stream failure to the stream's next request.
func (st *servedStream) stashErr(err error) {
	st.deferredMu.Lock()
	st.deferred = err
	st.deferredMu.Unlock()
}

// takeErr pops the deferred failure, if any.
func (st *servedStream) takeErr() error {
	st.deferredMu.Lock()
	defer st.deferredMu.Unlock()
	err := st.deferred
	st.deferred = nil
	return err
}

// touch stamps the stream as active now (in its view's simulated time).
func (st *servedStream) touch() { st.lastActive.Store(int64(st.view.v.SimNow())) }

// chargeSim folds the stream's not-yet-accounted simulated I/O time into
// the session and server counters and returns the delta.
func (st *servedStream) chargeSim(sess *session) {
	now := int64(st.s.SimNow())
	prev := st.simSeen.Swap(now)
	if d := now - prev; d > 0 {
		sess.counters.SimIONanos.Add(d)
		sess.srv.stats.SimIONanos.Add(d)
	}
}

// session is the per-connection server state: the stream registry, the
// per-session counter slice, and the drain handshake with Shutdown.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn

	// busy is held for the full handling of one request, from after the
	// frame is read until the response is flushed. Shutdown's drainClose
	// acquires it before severing the connection, which is what guarantees
	// an in-flight batch is fully written ("acknowledged") or not written
	// at all — never truncated.
	busy sync.Mutex

	mu         sync.Mutex
	streams    map[uint32]*servedStream // guarded by mu
	reaped     map[uint32]struct{}      // guarded by mu; tombstones for typed errors
	nextStream uint32                   // guarded by mu
	// tenant is the name this session's quota usage is attributed to, set
	// once by a set-tenant frame before any stream opens; empty sessions
	// fall back to a per-connection accounting key.
	tenant string // guarded by mu

	counters sessionCounters
}

// tenantKey returns the session's admission accounting key and whether it
// is a named tenant (as opposed to the per-connection fallback).
func (sess *session) tenantKey() (string, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.tenant != "" {
		return tenantKeyFor(sess.tenant), true
	}
	return fmt.Sprintf("conn:%d", sess.id), false
}

// countingConn counts bytes crossing the wire into both the session's and
// the server's counters.
type countingConn struct {
	net.Conn
	sess *session
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.sess.counters.BytesRead.Add(int64(n))
		c.sess.srv.stats.BytesRead.Add(int64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.sess.counters.BytesWritten.Add(int64(n))
		c.sess.srv.stats.BytesWritten.Add(int64(n))
	}
	return n, err
}

// serveConn runs one connection's request loop until the peer disconnects,
// a protocol error occurs, or the server drains.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer nc.Close()
	sess := &session{
		srv:     s,
		conn:    nc,
		streams: make(map[uint32]*servedStream),
		reaped:  make(map[uint32]struct{}),
	}
	if !s.register(sess) {
		// Raced with Shutdown: refuse politely and hang up.
		s.stats.ConnsRejected.Add(1)
		cc := &countingConn{Conn: nc, sess: sess}
		_ = WriteFrame(cc, FError, errorResp{Code: CodeShuttingDown, Msg: "server shutting down"}.encode())
		return
	}
	defer s.unregister(sess)

	cc := &countingConn{Conn: nc, sess: sess}
	br := bufio.NewReaderSize(cc, 64<<10)
	bw := bufio.NewWriterSize(cc, 64<<10)
	for {
		t, body, err := sess.readRequest(br)
		if err != nil {
			// Only protocol violations count as bad frames; disconnects and
			// drain-triggered closes are ordinary transport events.
			if errors.Is(err, errFrameLength) {
				s.stats.BadFrames.Add(1)
			}
			return
		}
		sess.busy.Lock()
		s.inFlight.Add(1)
		rt, rbody := sess.handle(t, body)
		werr := WriteFrame(bw, rt, rbody)
		if werr == nil {
			werr = bw.Flush()
		}
		idle := s.inFlight.Add(-1) == 0
		sess.busy.Unlock()
		if werr != nil {
			return
		}
		sess.clearDeadline()
		if s.isDraining() {
			return
		}
		if idle {
			// The burst just drained: give the catalog's background jobs
			// (compaction, checksum scrubs) their window.
			s.runMaintenance()
		}
	}
}

// readRequest reads one request frame, arming the per-request deadline the
// moment the frame header arrives: from then on the payload read, the
// handling and the response write all race the same RequestTimeout budget.
// Waiting for the *next* header is deliberately unbounded — an idle
// keep-alive connection is not a stalled request.
func (sess *session) readRequest(br *bufio.Reader) (FrameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("server: reading frame header: %w", err)
	}
	sess.armDeadline()
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d outside [1, %d]", errFrameLength, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("server: reading %d-byte frame payload: %w", n, err)
	}
	return FrameType(payload[0]), payload[1:], nil
}

// armDeadline sets the connection's absolute I/O deadline RequestTimeout
// from now. The deadline is wall clock by design: it defends the serving
// loop against peers that stall mid-frame or stop draining responses,
// failure modes the simulated disk clock cannot observe.
func (sess *session) armDeadline() {
	if d := sess.srv.cfg.RequestTimeout; d > 0 {
		_ = sess.conn.SetDeadline(time.Now().Add(d))
	}
}

// clearDeadline removes the per-request wall clock deadline once the
// response has been flushed.
func (sess *session) clearDeadline() {
	if sess.srv.cfg.RequestTimeout > 0 {
		_ = sess.conn.SetDeadline(time.Time{})
	}
}

// drainClose severs the session's connection once no request is in flight.
func (sess *session) drainClose() {
	sess.busy.Lock()
	sess.conn.Close()
	sess.busy.Unlock()
}

// handle dispatches one request frame and returns the response frame.
func (sess *session) handle(t FrameType, body []byte) (FrameType, []byte) {
	switch t {
	case FOpenView:
		return sess.handleOpenView(body)
	case FOpenStream:
		return sess.handleOpenStream(body)
	case FNextBatch:
		return sess.handleNextBatch(body)
	case FEstimate:
		return sess.handleEstimate(body)
	case FCancel:
		return sess.handleCancel(body)
	case FAppend:
		return sess.handleAppend(body)
	case FDeleteRecs:
		return sess.handleDeleteRecs(body)
	case FFlushView:
		return sess.handleFlushView(body)
	case FSetTenant:
		return sess.handleSetTenant(body)
	case FReplicaInfo:
		if len(body) != 0 {
			sess.srv.stats.BadFrames.Add(1)
			return reject(sess, CodeBadRequest, errTrailing.Error())
		}
		return FReplicaInfoResult, sess.srv.replicaInfo().encode()
	case FListViews:
		if len(body) != 0 {
			sess.srv.stats.BadFrames.Add(1)
			return reject(sess, CodeBadRequest, errTrailing.Error())
		}
		return FViewList, viewListResp{Views: sess.srv.listViews()}.encode()
	case FStats:
		return FStatsResult, sess.srv.Snapshot().encode()
	default:
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, "unknown frame type "+t.String())
	}
}

// reject builds a typed error response, counting it against the session.
func reject(sess *session, code uint16, msg string) (FrameType, []byte) {
	sess.counters.Rejections.Add(1)
	return FError, errorResp{Code: code, Msg: msg}.encode()
}

// isStreamClosed matches either view layer's stream-closed sentinel; the
// server treats both as losing a race with the reaper.
func isStreamClosed(err error) bool {
	return errors.Is(err, sampleview.ErrStreamClosed) || errors.Is(err, shard.ErrStreamClosed)
}

// classifyStreamErr maps a view-layer stream failure to its wire code,
// counting fault frames in the server stats.
func (sess *session) classifyStreamErr(err error) uint16 {
	switch {
	case sampleview.IsTransient(err):
		sess.srv.stats.TransientErrors.Add(1)
		return CodeTransient
	case sampleview.IsDegraded(err):
		sess.srv.stats.DegradedErrors.Add(1)
		return CodeDegraded
	default:
		return CodeInternal
	}
}

func (sess *session) handleOpenView(body []byte) (FrameType, []byte) {
	req, err := decodeOpenViewReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	sv, ok := sess.srv.lookupView(req.Name)
	if !ok {
		return reject(sess, CodeUnknownView, "no served view named "+req.Name)
	}
	return FViewInfo, viewInfo{
		ViewID: sv.id,
		Dims:   uint8(sv.v.Dims()),
		Height: uint8(sv.v.Height()),
		Count:  sv.v.Count(),
	}.encode()
}

func (sess *session) handleSetTenant(body []byte) (FrameType, []byte) {
	req, err := decodeSetTenantReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	if req.Tenant == "" {
		return reject(sess, CodeBadRequest, "empty tenant name")
	}
	sess.mu.Lock()
	switch {
	case sess.tenant == req.Tenant:
		sess.mu.Unlock() // idempotent re-attribution
		return FTenantOK, setTenantReq{Tenant: req.Tenant}.encode()
	case sess.tenant != "":
		sess.mu.Unlock()
		return reject(sess, CodeBadRequest, "connection already attributed to tenant "+sess.tenant)
	case sess.nextStream > 0:
		// Streams (and their quota slots) were already accounted under the
		// per-connection key; re-attributing them mid-flight would corrupt
		// both tallies.
		sess.mu.Unlock()
		return reject(sess, CodeBadRequest, "set-tenant must precede the connection's first stream")
	}
	sess.tenant = req.Tenant
	sess.mu.Unlock()
	sess.srv.attributeTenant(req.Tenant)
	return FTenantOK, setTenantReq{Tenant: req.Tenant}.encode()
}

func (sess *session) handleOpenStream(body []byte) (FrameType, []byte) {
	req, err := decodeOpenStreamReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	sv, ok := sess.srv.lookupViewID(req.ViewID)
	if !ok {
		return reject(sess, CodeUnknownView, "unknown view id")
	}
	if req.Query.Dims() != sv.v.Dims() {
		return reject(sess, CodeBadRequest, "query dimensions do not match the view")
	}
	var seeded SeededSource
	if req.Seeded {
		if seeded, ok = sv.v.(SeededSource); !ok {
			return reject(sess, CodeBadRequest, "view "+sv.name+" does not support seeded streams")
		}
	}

	key, _ := sess.tenantKey()
	code, ok := sess.srv.admitStream(key)
	if !ok && code == CodeServerStreams {
		// The server-wide cap is the one moment idle streams matter: reap
		// abandoned ones and retry, so a saturated server sheds dead weight
		// before rejecting live traffic. Reaping never runs uncontended —
		// under heavy fan-in the shared simulated clock races far ahead of
		// any single stream's activity, and an unconditional sweep would
		// collect streams that are merely waiting their turn.
		sess.srv.reapIdle()
		code, ok = sess.srv.admitStream(key)
	}
	if !ok {
		switch code {
		case CodeServerStreams:
			sess.srv.stats.RejectedServer.Add(1)
			return reject(sess, code, "server stream limit reached")
		case CodeTenantStreams:
			sess.srv.stats.RejectedTenant.Add(1)
			return reject(sess, code, "tenant stream limit reached")
		default:
			sess.srv.stats.RejectedDrain.Add(1)
			return reject(sess, code, "server shutting down")
		}
	}
	if !sess.claimConnSlot() {
		sess.srv.releaseStreams(key, 1)
		sess.srv.stats.RejectedConn.Add(1)
		return reject(sess, CodeConnStreams, "connection stream limit reached")
	}

	var stream ViewStream
	if req.Seeded {
		stream, err = seeded.OpenStreamSeeded(req.Query, req.Seed)
	} else {
		stream, err = sv.v.OpenStream(req.Query)
	}
	if err != nil {
		sess.dropConnSlot()
		sess.srv.releaseStreams(key, 1)
		// Opening a stream on a view with a live write path scans delta
		// pages, so storage faults can strike here too: type them the same
		// way batch failures are, so clients retry transients and tolerate
		// degradation instead of treating the open as a server bug.
		return reject(sess, sess.classifyStreamErr(err), err.Error())
	}
	st := &servedStream{view: sv, s: stream}
	if req.Seeded && req.StartPos > 0 {
		// A migrated or hedged stream resumes mid-sequence: fast-forward
		// past the prefix the client already holds before registering the
		// stream. A failure here closes the stream and surfaces typed, so
		// the router can retry the open elsewhere.
		if err := st.skipTo(req.StartPos); err != nil {
			st.s.Close()
			sess.dropConnSlot()
			sess.srv.releaseStreams(key, 1)
			return reject(sess, sess.classifyStreamErr(err), err.Error())
		}
	}
	st.touch()
	sess.mu.Lock()
	sess.nextStream++
	st.id = sess.nextStream
	sess.streams[st.id] = st
	sess.mu.Unlock()
	sess.counters.StreamsOpened.Add(1)
	sess.srv.stats.StreamsOpened.Add(1)
	return FStreamOpened, streamOpened{StreamID: st.id}.encode()
}

// skipTo fast-forwards the stream to position target by sampling and
// discarding. Positions already passed are never revisited; a predicate
// that exhausts before target simply leaves the stream at its end. The
// position advances through partial progress, so a transient fault leaves
// the skip resumable exactly where it struck.
func (st *servedStream) skipTo(target int64) error {
	for {
		cur := st.pos.Load()
		if cur >= target {
			return nil
		}
		chunk := target - cur
		if chunk > 4096 {
			chunk = 4096
		}
		recs, err := st.s.Sample(int(chunk))
		st.pos.Add(int64(len(recs)))
		if err != nil {
			return err
		}
		if int64(len(recs)) < chunk {
			return nil // exhausted before target
		}
	}
}

// claimConnSlot reserves one per-connection stream slot.
func (sess *session) claimConnSlot() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return len(sess.streams) < sess.srv.cfg.MaxStreamsPerConn
}

// dropConnSlot is the inverse of claimConnSlot for the error path; slots
// are tracked implicitly by map size, so it only exists for symmetry.
func (sess *session) dropConnSlot() {}

func (sess *session) lookupStream(id uint32) (*servedStream, bool, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st, ok := sess.streams[id]
	_, wasReaped := sess.reaped[id]
	return st, ok, wasReaped
}

// removeStream unregisters a stream, optionally leaving a reaped tombstone,
// and reports whether it was present.
func (sess *session) removeStream(id uint32, asReaped bool) (*servedStream, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st, ok := sess.streams[id]
	if !ok {
		return nil, false
	}
	delete(sess.streams, id)
	if asReaped {
		sess.reaped[id] = struct{}{}
	}
	return st, true
}

func (sess *session) handleNextBatch(body []byte) (FrameType, []byte) {
	req, err := decodeNextBatchReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	st, ok, wasReaped := sess.lookupStream(req.StreamID)
	if !ok {
		if wasReaped {
			return reject(sess, CodeStreamReaped, "stream reaped after simulated-clock idle timeout")
		}
		return reject(sess, CodeUnknownStream, "unknown stream id")
	}
	if derr := st.takeErr(); derr != nil {
		return reject(sess, sess.classifyStreamErr(derr), derr.Error())
	}
	if req.Pos >= 0 {
		// Position-checked pull: samples are served exactly once, so a
		// request behind the stream is unservable — the caller must reopen
		// at the position it wants. A request ahead of the stream (the
		// losing half of a hedged pair, reconciling) fast-forwards: the
		// skipped records were already delivered by the other replica.
		cur := st.pos.Load()
		if req.Pos < cur {
			return reject(sess, CodeStreamPosition, fmt.Sprintf(
				"stream at position %d, requested position %d is behind it", cur, req.Pos))
		}
		if req.Pos > cur {
			if err := st.skipTo(req.Pos); err != nil {
				st.chargeSim(sess)
				st.touch()
				if isStreamClosed(err) {
					sess.removeStream(req.StreamID, true)
					return reject(sess, CodeStreamReaped, "stream reaped after simulated-clock idle timeout")
				}
				return reject(sess, sess.classifyStreamErr(err), err.Error())
			}
		}
	}
	max := int(req.Max)
	if max <= 0 || max > sess.srv.cfg.MaxBatch {
		max = sess.srv.cfg.MaxBatch
	}
	recs, err := st.s.Sample(max)
	st.chargeSim(sess)
	st.touch()
	pos := st.pos.Add(int64(len(recs)))
	if err != nil {
		if isStreamClosed(err) {
			// Lost a race with the reaper between lookup and Sample.
			sess.removeStream(req.StreamID, true)
			return reject(sess, CodeStreamReaped, "stream reaped after simulated-clock idle timeout")
		}
		if len(recs) == 0 {
			return reject(sess, sess.classifyStreamErr(err), err.Error())
		}
		// A partial batch rode ahead of the failure. Deliver it — the
		// records are valid and acknowledged batches must never be dropped.
		// A transient fault needs nothing more: the stream made no further
		// progress and the next pull resumes at the faulted stab. A hard
		// failure is stashed so the typed error surfaces on the stream's
		// next request instead of vanishing.
		if !sampleview.IsTransient(err) {
			st.stashErr(err)
		}
		sess.counters.Batches.Add(1)
		sess.counters.Records.Add(int64(len(recs)))
		sess.srv.stats.BatchesServed.Add(1)
		sess.srv.stats.RecordsServed.Add(int64(len(recs)))
		return FBatch, batchResp{StreamID: req.StreamID, EOF: false, Records: recs, Pos: pos}.encode()
	}
	eof := len(recs) < max
	if eof {
		// The predicate is exhausted: retire the stream and free its
		// admission slot without waiting for a cancel.
		if _, ok := sess.removeStream(req.StreamID, false); ok {
			st.s.Close()
			sess.counters.StreamsClosed.Add(1)
			sess.srv.stats.StreamsClosed.Add(1)
			key, _ := sess.tenantKey()
			sess.srv.releaseStreams(key, 1)
		}
	}
	sess.counters.Batches.Add(1)
	sess.counters.Records.Add(int64(len(recs)))
	sess.srv.stats.BatchesServed.Add(1)
	sess.srv.stats.RecordsServed.Add(int64(len(recs)))
	return FBatch, batchResp{StreamID: req.StreamID, EOF: eof, Records: recs, Pos: pos}.encode()
}

func (sess *session) handleEstimate(body []byte) (FrameType, []byte) {
	req, err := decodeEstimateReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	sv, ok := sess.srv.lookupViewID(req.ViewID)
	if !ok {
		return reject(sess, CodeUnknownView, "unknown view id")
	}
	if req.Query.Dims() != sv.v.Dims() {
		return reject(sess, CodeBadRequest, "query dimensions do not match the view")
	}
	est, err := sv.v.EstimateCount(req.Query)
	if err != nil {
		return reject(sess, sess.classifyStreamErr(err), err.Error())
	}
	sess.srv.stats.EstimatesServed.Add(1)
	return FEstimateResult, estimateResp{Count: est}.encode()
}

// admitWrite runs write-path admission for n incoming entries against sv:
// the source must be writable, and its in-memory buffer (records plus
// pending tombstones) must have room under the server's backlog cap. It
// returns the writable surface, or a rejection code and message.
func (sess *session) admitWrite(sv *servedView, n int) (WritableSource, uint16, string) {
	w, ok := sv.v.(WritableSource)
	if !ok {
		return nil, CodeReadOnly, "view " + sv.name + " is read-only"
	}
	if n > 0 {
		ws := w.WriteStats()
		backlog := ws.MemViewRecords + ws.MemViewTombstones
		if backlog+int64(n) > int64(sess.srv.cfg.MaxWriteBacklog) {
			return nil, CodeWriteBacklog, fmt.Sprintf(
				"write backlog %d + batch %d over cap %d; flush pending", backlog, n, sess.srv.cfg.MaxWriteBacklog)
		}
	}
	return w, 0, ""
}

// rejectWrite is reject plus the write-rejection counter.
func (sess *session) rejectWrite(code uint16, msg string) (FrameType, []byte) {
	sess.srv.stats.RejectedWrites.Add(1)
	return reject(sess, code, msg)
}

// admitRate draws n entries from the write-rate token bucket of the tenant
// this session is attributed to (its own bucket when no tenant is set —
// the pre-fleet per-connection behaviour).
func (sess *session) admitRate(n int) bool {
	key, _ := sess.tenantKey()
	return sess.srv.admitRate(key, n)
}

// rejectThrottled is the typed write-rate rejection.
func (sess *session) rejectThrottled(n int) (FrameType, []byte) {
	sess.srv.stats.RejectedThrottle.Add(1)
	return reject(sess, CodeWriteThrottled, fmt.Sprintf(
		"write rate limit: batch of %d exceeds the tenant's available tokens; retry after backoff", n))
}

func (sess *session) handleAppend(body []byte) (FrameType, []byte) {
	req, err := decodeAppendReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	sv, ok := sess.srv.lookupViewID(req.ViewID)
	if !ok {
		return reject(sess, CodeUnknownView, "unknown view id")
	}
	w, code, msg := sess.admitWrite(sv, len(req.Records))
	if w == nil {
		return sess.rejectWrite(code, msg)
	}
	if !sess.admitRate(len(req.Records)) {
		return sess.rejectThrottled(len(req.Records))
	}
	// Inserts are applied in order; the first failure stops the batch and
	// reports it, with the acknowledged count telling the client how far
	// the batch got (earlier inserts are already applied in the memview).
	for i := range req.Records {
		if err := w.Insert(req.Records[i]); err != nil {
			sess.srv.stats.RecordsIngested.Add(int64(i))
			return reject(sess, CodeInternal, fmt.Sprintf("append record %d of %d: %v", i, len(req.Records), err))
		}
	}
	// The ack is a durability promise: group-commit the batch before
	// sending it, so an acked append survives a crash.
	if err := w.Commit(); err != nil {
		return reject(sess, CodeInternal, fmt.Sprintf("append commit: %v", err))
	}
	sess.srv.stats.RecordsIngested.Add(int64(len(req.Records)))
	return FAppendOK, writeAck{ViewID: req.ViewID, N: uint32(len(req.Records))}.encode()
}

func (sess *session) handleDeleteRecs(body []byte) (FrameType, []byte) {
	req, err := decodeDeleteRecsReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	sv, ok := sess.srv.lookupViewID(req.ViewID)
	if !ok {
		return reject(sess, CodeUnknownView, "unknown view id")
	}
	w, code, msg := sess.admitWrite(sv, len(req.Records))
	if w == nil {
		return sess.rejectWrite(code, msg)
	}
	if !sess.admitRate(len(req.Records)) {
		return sess.rejectThrottled(len(req.Records))
	}
	for i := range req.Records {
		if err := w.Delete(req.Records[i]); err != nil {
			sess.srv.stats.RecordsDeleted.Add(int64(i))
			return reject(sess, CodeInternal, fmt.Sprintf("delete record %d of %d: %v", i, len(req.Records), err))
		}
	}
	// Like appends, a delete ack promises the tombstones survive a crash.
	if err := w.Commit(); err != nil {
		return reject(sess, CodeInternal, fmt.Sprintf("delete commit: %v", err))
	}
	sess.srv.stats.RecordsDeleted.Add(int64(len(req.Records)))
	return FDeleteOK, writeAck{ViewID: req.ViewID, N: uint32(len(req.Records))}.encode()
}

func (sess *session) handleFlushView(body []byte) (FrameType, []byte) {
	req, err := decodeFlushViewReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	sv, ok := sess.srv.lookupViewID(req.ViewID)
	if !ok {
		return reject(sess, CodeUnknownView, "unknown view id")
	}
	w, code, msg := sess.admitWrite(sv, 0)
	if w == nil {
		return sess.rejectWrite(code, msg)
	}
	ws := w.WriteStats()
	buffered := ws.MemViewRecords + ws.MemViewTombstones
	if err := w.Flush(); err != nil {
		code := CodeInternal
		if sampleview.IsTransient(err) {
			sess.srv.stats.TransientErrors.Add(1)
			code = CodeTransient
		}
		return reject(sess, code, err.Error())
	}
	sess.srv.stats.FlushesServed.Add(1)
	n := uint32(buffered)
	if buffered < 0 || buffered > int64(^uint32(0)) {
		n = 0
	}
	return FFlushOK, writeAck{ViewID: req.ViewID, N: n}.encode()
}

func (sess *session) handleCancel(body []byte) (FrameType, []byte) {
	req, err := decodeCancelReq(body)
	if err != nil {
		sess.srv.stats.BadFrames.Add(1)
		return reject(sess, CodeBadRequest, err.Error())
	}
	st, ok := sess.removeStream(req.StreamID, false)
	if !ok {
		// Idempotent against the reaper and EOF auto-close: cancelling a
		// stream that is already gone succeeds.
		sess.mu.Lock()
		_, wasKnown := sess.reaped[req.StreamID]
		known := wasKnown || req.StreamID != 0 && req.StreamID <= sess.nextStream
		sess.mu.Unlock()
		if known {
			return FCancelOK, cancelReq{StreamID: req.StreamID}.encode()
		}
		return reject(sess, CodeUnknownStream, "unknown stream id")
	}
	st.chargeSim(sess)
	st.s.Close()
	sess.counters.StreamsClosed.Add(1)
	sess.srv.stats.StreamsClosed.Add(1)
	key, _ := sess.tenantKey()
	sess.srv.releaseStreams(key, 1)
	return FCancelOK, cancelReq{StreamID: req.StreamID}.encode()
}

// reapIdle closes this session's streams that are idle past d on their
// view's simulated clock and returns how many it reaped.
func (sess *session) reapIdle(d time.Duration) int {
	sess.mu.Lock()
	var victims []*servedStream
	for id, st := range sess.streams {
		if time.Duration(int64(st.view.v.SimNow())-st.lastActive.Load()) > d {
			victims = append(victims, st)
			delete(sess.streams, id)
			sess.reaped[id] = struct{}{}
		}
	}
	sess.mu.Unlock()
	for _, st := range victims {
		st.chargeSim(sess)
		st.s.Close()
	}
	if n := int64(len(victims)); n > 0 {
		sess.counters.StreamsReaped.Add(n)
		sess.counters.StreamsClosed.Add(n)
	}
	return len(victims)
}

// closeAllStreams tears down every stream at session exit and returns how
// many server-wide slots to release.
func (sess *session) closeAllStreams() int {
	sess.mu.Lock()
	victims := make([]*servedStream, 0, len(sess.streams))
	for id, st := range sess.streams {
		victims = append(victims, st)
		delete(sess.streams, id)
	}
	sess.mu.Unlock()
	for _, st := range victims {
		st.chargeSim(sess)
		st.s.Close()
	}
	if n := int64(len(victims)); n > 0 {
		sess.counters.StreamsClosed.Add(n)
		sess.srv.stats.StreamsClosed.Add(n)
	}
	return len(victims)
}

// snapshot copies the session's counters.
func (sess *session) snapshot() SessionSnapshot {
	sess.mu.Lock()
	open := int64(len(sess.streams))
	sess.mu.Unlock()
	c := &sess.counters
	return SessionSnapshot{
		ID:            sess.id,
		OpenStreams:   open,
		StreamsOpened: c.StreamsOpened.Load(),
		StreamsReaped: c.StreamsReaped.Load(),
		Batches:       c.Batches.Load(),
		Records:       c.Records.Load(),
		Rejections:    c.Rejections.Load(),
		BytesRead:     c.BytesRead.Load(),
		BytesWritten:  c.BytesWritten.Load(),
		SimIO:         time.Duration(c.SimIONanos.Load()),
	}
}
