package iosim

import (
	"testing"
	"time"
)

// TestFaultPlanDeterminism verifies that a plan's fault schedule is a pure
// function of (seed, file, page, attempt): byte-identical across plan
// copies, and different under a different seed.
func TestFaultPlanDeterminism(t *testing.T) {
	plan := FaultPlan{
		Seed: 42, TransientRate: 0.2, TransientBurst: 3,
		StickyRate: 0.02, CorruptRate: 0.05,
		LatencyRate: 0.1, LatencySpike: 5 * time.Millisecond,
	}
	other := FaultPlan{
		Seed: 43, TransientRate: 0.2, TransientBurst: 3,
		StickyRate: 0.02, CorruptRate: 0.05,
		LatencyRate: 0.1, LatencySpike: 5 * time.Millisecond,
	}
	same := plan // value copy

	differ := 0
	for page := int64(0); page < 2000; page++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := plan.PageFate(1, page, attempt)
			b := same.PageFate(1, page, attempt)
			if a != b {
				t.Fatalf("page %d attempt %d: schedule not deterministic: %+v vs %+v", page, attempt, a, b)
			}
			if a != other.PageFate(1, page, attempt) {
				differ++
			}
		}
	}
	if differ == 0 {
		t.Fatalf("different seeds produced identical schedules over 2000 pages")
	}
}

// TestFaultPlanRates checks that per-page fault incidence is in the right
// ballpark for each knob over a large page population.
func TestFaultPlanRates(t *testing.T) {
	plan := FaultPlan{
		Seed: 7, TransientRate: 0.10, StickyRate: 0.05, CorruptRate: 0.08,
		LatencyRate: 0.20, LatencySpike: time.Millisecond,
	}
	const n = 20000
	var transient, sticky, corrupt, spiked int
	for page := int64(0); page < n; page++ {
		f := plan.PageFate(3, page, 0)
		if f.Sticky {
			sticky++
			continue
		}
		if f.Transient {
			transient++
		}
		if f.FlipBit >= 0 {
			corrupt++
		}
		if f.Spike > 0 {
			spiked++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		lo, hi := int(want*n*0.8), int(want*n*1.2)
		if got < lo || got > hi {
			t.Errorf("%s incidence %d outside [%d, %d] for rate %v", name, got, lo, hi, want)
		}
	}
	check("sticky", sticky, 0.05)
	// Sticky pages shadow the other faults, so compare against the surviving
	// population.
	live := float64(n-sticky) / n
	check("transient", transient, 0.10*live)
	check("corrupt", corrupt, 0.08*live)
	check("latency", spiked, 0.20*live)
}

// TestFaultBurstEventuallySucceeds verifies that flaky pages recover: for
// every page, attempts at or past the burst length see no transient fault,
// so a retry loop with enough budget always makes progress.
func TestFaultBurstEventuallySucceeds(t *testing.T) {
	plan := FaultPlan{Seed: 99, TransientRate: 1.0, TransientBurst: 3}
	for page := int64(0); page < 500; page++ {
		sawClear := false
		for attempt := 0; attempt <= plan.TransientBurst; attempt++ {
			f := plan.PageFate(0, page, attempt)
			if !f.Transient {
				sawClear = true
			} else if sawClear {
				t.Fatalf("page %d: transient fault at attempt %d after clearing", page, attempt)
			}
		}
		if !sawClear {
			t.Fatalf("page %d: still transient after %d attempts (burst must be < budget)", page, plan.TransientBurst+1)
		}
	}
}

// TestChargerBeginRead exercises the attempt cursors: a Sim (and a Clock)
// sees a flaky page fail for its burst and then stay healthy, with fault
// counters advancing accordingly.
func TestChargerBeginRead(t *testing.T) {
	sim := New(DefaultModel())
	fid := sim.Register()
	plan := FaultPlan{Seed: 1, TransientRate: 1.0, TransientBurst: 1}
	sim.SetFaultPlan(plan)

	// With rate 1.0 and burst 1, every page fails exactly its first attempt.
	for page := int64(0); page < 10; page++ {
		if f := sim.BeginRead(fid, page); !f.Transient {
			t.Fatalf("page %d: first attempt should be transient", page)
		}
		if f := sim.BeginRead(fid, page); f.Transient {
			t.Fatalf("page %d: second attempt should succeed", page)
		}
	}
	if got := sim.FaultCounters().Transient; got != 10 {
		t.Fatalf("sim transient counter = %d, want 10", got)
	}

	// A forked Clock has its own cursors: the same pages fail again for it.
	clk := sim.Fork()
	if f := clk.BeginRead(fid, 0); !f.Transient {
		t.Fatalf("clock: first attempt should be transient despite sim history")
	}
	if f := clk.BeginRead(fid, 0); f.Transient {
		t.Fatalf("clock: second attempt should succeed")
	}
	if got := clk.FaultCounters().Transient; got != 1 {
		t.Fatalf("clock transient counter = %d, want 1", got)
	}
	// Clock faults mirror into the parent totals.
	if got := sim.FaultCounters().Transient; got != 11 {
		t.Fatalf("sim transient counter after clock = %d, want 11", got)
	}
}

// TestLatencySpikeChargesClock verifies latency faults advance simulated
// time over and above the access cost itself.
func TestLatencySpikeChargesClock(t *testing.T) {
	sim := New(DefaultModel())
	fid := sim.Register()
	sim.SetFaultPlan(FaultPlan{Seed: 5, LatencyRate: 1.0, LatencySpike: 25 * time.Millisecond})

	before := sim.Now()
	f := sim.BeginRead(fid, 7)
	if f.Spike != 25*time.Millisecond {
		t.Fatalf("spike = %v, want 25ms", f.Spike)
	}
	if got := sim.Now() - before; got != 25*time.Millisecond {
		t.Fatalf("clock advanced %v, want 25ms", got)
	}
	if got := sim.FaultCounters().LatencySpikes; got != 1 {
		t.Fatalf("latency counter = %d, want 1", got)
	}
}

// TestProfilePlan checks the named profiles resolve and unknown names fail.
func TestProfilePlan(t *testing.T) {
	for _, name := range Profiles() {
		p, err := ProfilePlan(name, 123)
		if err != nil {
			t.Fatalf("ProfilePlan(%q): %v", name, err)
		}
		if p.Seed != 123 {
			t.Fatalf("ProfilePlan(%q) seed = %d, want 123", name, p.Seed)
		}
		if name != "none" && !p.Enabled() {
			t.Fatalf("profile %q should inject faults", name)
		}
	}
	if _, err := ProfilePlan("no-such-profile", 1); err == nil {
		t.Fatalf("unknown profile should error")
	}
	// flaky-disk bursts must fit the default retry budget so the storage
	// layer absorbs every transient (acceptance criterion: zero
	// client-visible errors).
	p, _ := ProfilePlan("flaky-disk", 1)
	if p.TransientBurst >= p.Attempts() {
		t.Fatalf("flaky-disk burst %d must be < attempt budget %d", p.TransientBurst, p.Attempts())
	}
	// flaky-deep bursts must exceed the budget so typed transients escape to
	// the serving layer.
	p, _ = ProfilePlan("flaky-deep", 1)
	if p.TransientBurst < p.Attempts() {
		t.Fatalf("flaky-deep burst %d must be >= attempt budget %d", p.TransientBurst, p.Attempts())
	}
}

// TestSetFaultPlanClear verifies a zero plan disables injection.
func TestSetFaultPlanClear(t *testing.T) {
	sim := New(DefaultModel())
	fid := sim.Register()
	sim.SetFaultPlan(FaultPlan{Seed: 2, TransientRate: 1.0})
	if f := sim.BeginRead(fid, 0); !f.Transient {
		t.Fatalf("expected transient fault with plan installed")
	}
	sim.SetFaultPlan(FaultPlan{})
	if f := sim.BeginRead(fid, 1); f.Transient || f.Sticky || f.FlipBit >= 0 || f.Spike != 0 {
		t.Fatalf("expected no fault after clearing plan, got %+v", f)
	}
}
