package iosim

import (
	"errors"
	"fmt"
	"strings"
)

// This file is the crash-injection layer of the simulated disk. A CrashPlan
// schedules one deterministic "power cut" at a named crash point on the
// write path: the Nth time the instrumented site is reached, the Sim flips
// into the crashed state and every subsequent crash-point check (and Sync)
// fails with the same *CrashError. The write path is expected to abort and
// propagate the error; whatever bytes physically reached the files before
// the cut — including a torn page at CrashMidPageWrite — are exactly what
// recovery sees on the next open. Buffered-but-unsynced writes are the
// caller's loss window: layers that buffer (the WAL's group-commit buffer)
// simply never flush after the cut, which models a power cut discarding
// everything that had not reached a durable Sync barrier.
//
// Like FaultPlan, the schedule is deterministic: it depends only on the
// plan and the sequence of crash-point encounters, never on wall-clock time
// or goroutine scheduling of unrelated streams.

// CrashPoint names an instrumented site on the write path.
type CrashPoint uint8

const (
	// CrashNone disables crash injection.
	CrashNone CrashPoint = iota
	// CrashPostWALAppend fires after a WAL record is appended to the
	// group-commit buffer but before any sync: the write is lost and must
	// never have been acked.
	CrashPostWALAppend
	// CrashMidPageWrite fires halfway through flushing buffered WAL bytes
	// to the segment file, leaving a torn (partial, checksum-failing) tail
	// that replay must tolerate.
	CrashMidPageWrite
	// CrashPreManifestRename fires after the temp manifest is written but
	// before the atomic rename installs it: the old manifest stays live and
	// the freshly written level file becomes an orphan.
	CrashPreManifestRename
	// CrashMidCompaction fires after a compaction writes its merged level
	// but before the manifest install: inputs stay live, output is orphaned.
	CrashMidCompaction

	numCrashPoints
)

var crashPointNames = [numCrashPoints]string{
	CrashNone:              "none",
	CrashPostWALAppend:     "post-wal-append",
	CrashMidPageWrite:      "mid-page-write",
	CrashPreManifestRename: "pre-manifest-rename",
	CrashMidCompaction:     "mid-compaction",
}

// String returns the point's stable name (used in flags and reports).
func (p CrashPoint) String() string {
	if int(p) < len(crashPointNames) {
		return crashPointNames[p]
	}
	return fmt.Sprintf("crashpoint(%d)", int(p))
}

// CrashPoints returns every real crash point, in write-path order.
func CrashPoints() []CrashPoint {
	return []CrashPoint{CrashPostWALAppend, CrashMidPageWrite, CrashPreManifestRename, CrashMidCompaction}
}

// ParseCrashPoint resolves a crash-point name from a flag.
func ParseCrashPoint(s string) (CrashPoint, error) {
	for p, name := range crashPointNames {
		if s == name {
			return CrashPoint(p), nil
		}
	}
	names := make([]string, 0, numCrashPoints)
	for _, p := range CrashPoints() {
		names = append(names, p.String())
	}
	return CrashNone, fmt.Errorf("iosim: unknown crash point %q (have %s)",
		s, strings.Join(names, ", "))
}

// CrashPlan schedules one deterministic power cut. The zero value injects
// nothing.
type CrashPlan struct {
	// Point is the instrumented site at which to cut power.
	Point CrashPoint
	// Hit is the 1-based encounter of Point that triggers the cut; 0 means
	// the first encounter.
	Hit int
}

// Enabled reports whether the plan injects a crash.
func (p CrashPlan) Enabled() bool { return p.Point != CrashNone }

// hit returns the 1-based trigger encounter.
func (p CrashPlan) hit() int64 {
	if p.Hit > 0 {
		return int64(p.Hit)
	}
	return 1
}

// CrashError is the power cut: every crash-point check and Sync after the
// trigger fails with it. It carries the point and encounter that fired so
// harnesses can label the drill.
type CrashError struct {
	Point CrashPoint
	Hit   int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("iosim: simulated power cut at %s (hit %d)", e.Point, e.Hit)
}

// IsCrash reports whether err is (or wraps) a simulated power cut.
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// SetCrashPlan installs (or, with a zero plan, clears) the crash schedule
// and resets the crashed state and encounter counters, so a reopened Sim
// starts alive.
func (s *Sim) SetCrashPlan(p CrashPlan) {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	s.crashPlan = p
	s.crashErr = nil
	for i := range s.crashHits {
		s.crashHits[i] = 0
	}
}

// CrashPlan returns the active crash schedule (zero if none).
func (s *Sim) CrashPlan() CrashPlan {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	return s.crashPlan
}

// Crashed reports whether the simulated power cut has fired.
func (s *Sim) Crashed() bool {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	return s.crashErr != nil
}

// AtCrashPoint is called by the write path at each instrumented site. It
// counts the encounter and returns nil while power is on; once the plan's
// trigger encounter is reached (or after any prior cut) it returns the
// *CrashError, and the caller must abort without performing the guarded
// write step.
func (s *Sim) AtCrashPoint(p CrashPoint) error {
	if p == CrashNone || p >= numCrashPoints {
		return nil
	}
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	if s.crashErr != nil {
		return s.crashErr
	}
	if !s.crashPlan.Enabled() {
		return nil
	}
	if s.crashPlan.Point == p {
		s.crashHits[p]++
		if s.crashHits[p] >= s.crashPlan.hit() {
			s.crashErr = &CrashError{Point: p, Hit: int(s.crashHits[p])}
			return s.crashErr
		}
	}
	return nil
}

// Sync charges one durability barrier (fsync) to the clock and counts it.
// The barrier costs one random write of service time: a flush forces the
// device to drain its cache and reposition, which is the same order of work
// as a random page write. After a power cut, Sync fails with the crash
// error and charges nothing — the device is gone.
func (s *Sim) Sync() error {
	s.crashMu.Lock()
	err := s.crashErr
	s.crashMu.Unlock()
	if err != nil {
		return err
	}
	s.syncs.Add(1)
	s.now.Add(int64(s.model.RandomWrite))
	return nil
}

// Syncs returns the number of durability barriers charged so far.
func (s *Sim) Syncs() int64 { return s.syncs.Load() }

// AtCrashPoint delegates to the parent Sim: a power cut takes every stream
// down at once.
func (c *Clock) AtCrashPoint(p CrashPoint) error {
	if c.parent == nil {
		return nil
	}
	return c.parent.AtCrashPoint(p)
}

// Sync charges a durability barrier to the stream's clock and the parent's.
func (c *Clock) Sync() error {
	if c.parent == nil {
		c.now += c.model.RandomWrite
		return nil
	}
	if err := c.parent.Sync(); err != nil {
		return err
	}
	c.now += c.model.RandomWrite
	return nil
}
