package iosim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file is the fault-injection layer of the simulated disk. A FaultPlan
// is a deterministic, seeded schedule of storage faults: whether a given
// page is flaky, dead, bit-rotted or slow is a pure function of the plan's
// seed and the page's identity, never of wall-clock time, goroutine
// scheduling or global state. Two runs with the same plan therefore inject
// byte-identical fault schedules, and a stream's fault counters are the
// same whether it runs alone or beside a hundred others.
//
// Faults are injected at read time by pagefile, which consults the charger
// (Sim or per-stream Clock) via BeginRead before every read attempt.
// Transient faults are burst-shaped: a flaky page fails its first few read
// attempts *per charger* and then succeeds, so a bounded retry loop always
// makes progress and the schedule stays deterministic per stream at any
// concurrency. Sticky (dead) and corrupt pages are stateless per-page
// verdicts: every reader sees the same failure.

// FaultKind classifies a fault event for counting.
type FaultKind int

const (
	// FaultTransient: a read attempt failed transiently; a retry may succeed.
	FaultTransient FaultKind = iota
	// FaultLatency: an access was served after an injected latency spike.
	FaultLatency
	// FaultReread: a page was re-read after a checksum mismatch.
	FaultReread
	// FaultCorrupt: a page surfaced as corrupt after the reread budget.
	FaultCorrupt
	// FaultDead: a page was declared dead after the retry budget.
	FaultDead

	numFaultKinds
)

// FaultCounters aggregates fault activity observed by a Sim or Clock.
type FaultCounters struct {
	// Transient counts injected transient read failures (each one costs the
	// reader a retry).
	Transient int64
	// LatencySpikes counts accesses served after an injected latency spike.
	LatencySpikes int64
	// Rereads counts re-reads issued after a checksum mismatch.
	Rereads int64
	// CorruptPages counts reads that surfaced a corrupt page after
	// exhausting rereads.
	CorruptPages int64
	// DeadPages counts reads that exhausted the retry budget on an
	// unreadable (sticky-bad) page.
	DeadPages int64
}

// Total returns the total number of fault events.
func (c FaultCounters) Total() int64 {
	return c.Transient + c.LatencySpikes + c.Rereads + c.CorruptPages + c.DeadPages
}

// add folds kind counts indexed by FaultKind into the struct.
func (c *FaultCounters) add(k FaultKind, n int64) {
	switch k {
	case FaultTransient:
		c.Transient += n
	case FaultLatency:
		c.LatencySpikes += n
	case FaultReread:
		c.Rereads += n
	case FaultCorrupt:
		c.CorruptPages += n
	case FaultDead:
		c.DeadPages += n
	}
}

// DefaultReadAttempts is the per-read attempt budget pagefile uses when the
// plan does not override it: the first read plus up to three retries.
const DefaultReadAttempts = 4

// FaultPlan is a deterministic, seeded schedule of injected storage faults.
// The zero value injects nothing. All rates are probabilities in [0, 1]
// evaluated per page (sticky, corrupt, latency, flakiness) from the seed, so
// the schedule is a pure function of (Seed, file, page).
type FaultPlan struct {
	// Seed drives every fault decision. Plans with different seeds fail
	// different pages.
	Seed uint64

	// TransientRate is the per-page probability that a page is flaky. Reads
	// of a flaky page fail for the first burst attempts made by each charger
	// and succeed afterwards, modelling a transient bus/controller error
	// cleared by retrying.
	TransientRate float64
	// TransientBurst bounds the consecutive transient failures of a flaky
	// page (the actual burst is 1..TransientBurst, seeded per page).
	// Default 2. Bursts shorter than the read-attempt budget are absorbed by
	// the storage layer; longer bursts escape as typed TransientErrors for
	// the layers above to retry.
	TransientBurst int

	// LatencyRate is the per-page probability that accesses to the page
	// suffer an added LatencySpike of simulated service time.
	LatencyRate float64
	// LatencySpike is the added service time for latency-faulted pages.
	LatencySpike time.Duration

	// StickyRate is the per-page probability that a page is permanently
	// unreadable (a bad sector): every read attempt fails, and the storage
	// layer surfaces a dead-page error once its retries are exhausted.
	StickyRate float64

	// CorruptRate is the per-page probability that the page's stored image
	// is bit-rotted: reads succeed but return a frame with one deterministic
	// bit flipped, which per-page checksums detect.
	CorruptRate float64

	// MaxAttempts overrides the storage layer's per-read attempt budget
	// (first read + retries). 0 selects DefaultReadAttempts.
	MaxAttempts int
}

// Enabled reports whether the plan injects any faults at all.
func (p FaultPlan) Enabled() bool {
	return p.TransientRate > 0 || p.LatencyRate > 0 || p.StickyRate > 0 || p.CorruptRate > 0
}

// Attempts returns the per-read attempt budget the plan prescribes.
func (p FaultPlan) Attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultReadAttempts
}

// Fault is the verdict for one read attempt of one page.
type Fault struct {
	// Transient: this attempt fails; retrying may succeed.
	Transient bool
	// Sticky: the page is permanently unreadable; every attempt fails.
	Sticky bool
	// FlipBit is the bit index to flip in the returned page image, or -1.
	// The index is reduced modulo the page size by the storage layer, and is
	// a per-page constant: bit rot is in the stored data, so every reader
	// observes the same corruption.
	FlipBit int64
	// Spike is the added service latency already charged for this attempt.
	Spike time.Duration
}

// salts separate the independent per-page fault decisions.
const (
	saltSticky  = 0x5bd1e995
	saltFlaky   = 0x9e3779b9
	saltBurst   = 0x85ebca6b
	saltCorrupt = 0xc2b2ae35
	saltBit     = 0x27d4eb2f
	saltLatency = 0x165667b1
)

// hash is splitmix64 over the plan seed and the page identity.
func (p FaultPlan) hash(f FileID, page int64, salt uint64) uint64 {
	x := p.Seed ^ (uint64(uint32(f))+1)*0x9e3779b97f4a7c15 ^ uint64(page)*0xbf58476d1ce4e5b9 ^ salt*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll maps a per-page hash to [0, 1).
func (p FaultPlan) roll(f FileID, page int64, salt uint64) float64 {
	return float64(p.hash(f, page, salt)>>11) / (1 << 53)
}

// burst returns the consecutive-failure run length of a flaky page.
func (p FaultPlan) burst(f FileID, page int64) int {
	b := p.TransientBurst
	if b <= 0 {
		b = 2
	}
	return 1 + int(p.hash(f, page, saltBurst)%uint64(b))
}

// fate returns the fault injected into read attempt number attempt (the
// charger's per-page attempt cursor) of the given page. It is a pure
// function of (plan, file, page, attempt).
func (p FaultPlan) fate(f FileID, page int64, attempt int) Fault {
	flt := Fault{FlipBit: -1}
	if p.StickyRate > 0 && p.roll(f, page, saltSticky) < p.StickyRate {
		flt.Sticky = true
		return flt
	}
	if p.TransientRate > 0 && p.roll(f, page, saltFlaky) < p.TransientRate &&
		attempt < p.burst(f, page) {
		flt.Transient = true
	}
	if p.CorruptRate > 0 && p.roll(f, page, saltCorrupt) < p.CorruptRate {
		flt.FlipBit = int64(p.hash(f, page, saltBit) >> 1)
	}
	if p.LatencyRate > 0 && p.LatencySpike > 0 && p.roll(f, page, saltLatency) < p.LatencyRate {
		flt.Spike = p.LatencySpike
	}
	return flt
}

// PageFate returns the fault the plan would inject into the given read
// attempt of the page. It is exported for tests and the fsck tooling; the
// storage layer goes through Charger.BeginRead, which additionally advances
// the per-charger attempt cursor and charges spikes.
func (p FaultPlan) PageFate(f FileID, page int64, attempt int) Fault {
	if !p.Enabled() {
		return Fault{FlipBit: -1}
	}
	return p.fate(f, page, attempt)
}

// Profiles returns the named fault profiles, mildest first.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return profileRank[names[i]] < profileRank[names[j]] })
	return names
}

var profiles = map[string]FaultPlan{
	// none: a disk that never fails; the control row of every chaos run.
	"none": {},
	// flaky-disk: transient read errors only, in bursts short enough for the
	// storage layer's bounded retry to absorb. Clients must see zero errors.
	"flaky-disk": {TransientRate: 0.05, TransientBurst: 2},
	// slow-disk: no failures, but a tail of slow accesses (vibration,
	// remapped tracks): 10% of pages pay an extra 25ms of service time.
	"slow-disk": {LatencyRate: 0.10, LatencySpike: 25 * time.Millisecond},
	// flaky-deep: transient bursts longer than the storage retry budget, so
	// typed transient errors escape to the serving layer and exercise
	// client-side retry. Still zero data loss.
	"flaky-deep": {TransientRate: 0.05, TransientBurst: 8, MaxAttempts: 3},
	// bitrot: 1% of pages have a flipped bit in their stored image. Per-page
	// checksums must detect every one; nothing silent.
	"bitrot": {CorruptRate: 0.01, TransientRate: 0.01, TransientBurst: 2},
	// bad-sector: 0.5% of pages are permanently unreadable; streams degrade
	// with typed errors naming the lost leaf.
	"bad-sector": {StickyRate: 0.005, TransientRate: 0.02, TransientBurst: 2},
	// hell: everything at once.
	"hell": {
		TransientRate: 0.08, TransientBurst: 6, MaxAttempts: 3,
		LatencyRate: 0.10, LatencySpike: 25 * time.Millisecond,
		StickyRate: 0.004, CorruptRate: 0.008,
	},
}

var profileRank = map[string]int{
	"none": 0, "flaky-disk": 1, "slow-disk": 2, "flaky-deep": 3,
	"bitrot": 4, "bad-sector": 5, "hell": 6,
}

// ProfilePlan returns the named fault profile with the given seed.
func ProfilePlan(name string, seed uint64) (FaultPlan, error) {
	p, ok := profiles[name]
	if !ok {
		return FaultPlan{}, fmt.Errorf("iosim: unknown fault profile %q (have %s)",
			name, strings.Join(Profiles(), ", "))
	}
	p.Seed = seed
	return p, nil
}

// attemptKey identifies a per-charger read-attempt cursor.
type attemptKey struct {
	file FileID
	page int64
}

// SetFaultPlan installs (or, with a zero plan, clears) the fault schedule.
// It may be called at any time; in-flight reads see either the old or the
// new plan.
func (s *Sim) SetFaultPlan(p FaultPlan) {
	if !p.Enabled() {
		s.plan.Store(nil)
		return
	}
	s.plan.Store(&p)
}

// FaultPlan returns the active fault schedule (zero if none).
func (s *Sim) FaultPlan() FaultPlan {
	if p := s.plan.Load(); p != nil {
		return *p
	}
	return FaultPlan{}
}

// FaultCounters returns a snapshot of fault activity across the Sim and all
// its forked Clocks.
func (s *Sim) FaultCounters() FaultCounters {
	var c FaultCounters
	for k := FaultKind(0); k < numFaultKinds; k++ {
		c.add(k, s.faults[k].Load())
	}
	return c
}

// NoteFault records one fault outcome observed by the storage layer.
func (s *Sim) NoteFault(k FaultKind) { s.faults[k].Add(1) }

// nextAttempt returns and advances the per-page read-attempt cursor.
func (s *Sim) nextAttempt(f FileID, page int64) int {
	k := attemptKey{f, page}
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.attempts == nil {
		s.attempts = make(map[attemptKey]int)
	}
	a := s.attempts[k]
	s.attempts[k] = a + 1
	return a
}

// BeginRead consults the fault plan for the next read attempt of the page.
// It advances the per-page attempt cursor (only pages the plan marks flaky
// are tracked), charges any injected latency spike to the clock, and counts
// transient and latency faults.
func (s *Sim) BeginRead(f FileID, page int64) Fault {
	p := s.plan.Load()
	if p == nil {
		return Fault{FlipBit: -1}
	}
	attempt := 0
	if p.TransientRate > 0 && p.roll(f, page, saltFlaky) < p.TransientRate {
		attempt = s.nextAttempt(f, page)
	}
	flt := p.fate(f, page, attempt)
	if flt.Transient {
		s.faults[FaultTransient].Add(1)
	}
	if flt.Spike > 0 {
		s.Advance(flt.Spike)
		s.faults[FaultLatency].Add(1)
	}
	return flt
}

// FaultPlan returns the fault schedule of the parent Sim (zero if none).
func (c *Clock) FaultPlan() FaultPlan {
	if c.parent != nil {
		return c.parent.FaultPlan()
	}
	return FaultPlan{}
}

// FaultCounters returns the stream's own fault counters.
func (c *Clock) FaultCounters() FaultCounters { return c.faults }

// NoteFault records one fault outcome, mirroring it to the parent Sim.
func (c *Clock) NoteFault(k FaultKind) {
	c.faults.add(k, 1)
	if c.parent != nil {
		c.parent.faults[k].Add(1)
	}
}

// BeginRead consults the fault plan for the stream's next read attempt of
// the page, against the stream's private attempt cursors: the schedule a
// stream observes is a pure function of its own access sequence, identical
// at any concurrency.
func (c *Clock) BeginRead(f FileID, page int64) Fault {
	if c.parent == nil {
		return Fault{FlipBit: -1}
	}
	p := c.parent.plan.Load()
	if p == nil {
		return Fault{FlipBit: -1}
	}
	attempt := 0
	if p.TransientRate > 0 && p.roll(f, page, saltFlaky) < p.TransientRate {
		k := attemptKey{f, page}
		if c.attempts == nil {
			c.attempts = make(map[attemptKey]int)
		}
		attempt = c.attempts[k]
		c.attempts[k] = attempt + 1
	}
	flt := p.fate(f, page, attempt)
	if flt.Transient {
		c.faults.Transient++
		c.parent.faults[FaultTransient].Add(1)
	}
	if flt.Spike > 0 {
		c.Advance(flt.Spike)
		c.faults.LatencySpikes++
		c.parent.faults[FaultLatency].Add(1)
	}
	return flt
}
