package iosim

import (
	"fmt"
	"testing"
)

func TestCrashPointNamesRoundTrip(t *testing.T) {
	for _, p := range CrashPoints() {
		got, err := ParseCrashPoint(p.String())
		if err != nil {
			t.Fatalf("ParseCrashPoint(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParseCrashPoint(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if p, err := ParseCrashPoint("none"); err != nil || p != CrashNone {
		t.Fatalf("ParseCrashPoint(none) = %v, %v", p, err)
	}
	if _, err := ParseCrashPoint("half-past-flush"); err == nil {
		t.Fatal("unknown crash point parsed")
	}
}

func TestCrashPlanFiresOnNthHit(t *testing.T) {
	s := New(DefaultModel())
	s.SetCrashPlan(CrashPlan{Point: CrashMidPageWrite, Hit: 3})
	for i := 1; i <= 2; i++ {
		if err := s.AtCrashPoint(CrashMidPageWrite); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
		// Other points never count toward the trigger.
		if err := s.AtCrashPoint(CrashPostWALAppend); err != nil {
			t.Fatalf("unrelated point fired: %v", err)
		}
	}
	err := s.AtCrashPoint(CrashMidPageWrite)
	if !IsCrash(err) {
		t.Fatalf("hit 3 did not fire: %v", err)
	}
	if !s.Crashed() {
		t.Fatal("Crashed() false after the cut")
	}
	// Sticky: every point, and Sync, now fails with the same cut.
	if err := s.AtCrashPoint(CrashPreManifestRename); !IsCrash(err) {
		t.Fatalf("post-cut crash point returned %v", err)
	}
	if err := s.Sync(); !IsCrash(err) {
		t.Fatalf("post-cut Sync returned %v", err)
	}
	var ce *CrashError
	if ok := func() bool { e, k := err.(*CrashError); ce = e; return k }(); !ok {
		t.Fatalf("post-cut error is %T, want *CrashError", err)
	}
	if ce.Point != CrashMidPageWrite || ce.Hit != 3 {
		t.Fatalf("crash error carries %v/%d, want mid-page-write/3", ce.Point, ce.Hit)
	}
}

func TestCrashPlanZeroHitMeansFirst(t *testing.T) {
	s := New(DefaultModel())
	s.SetCrashPlan(CrashPlan{Point: CrashPostWALAppend})
	if err := s.AtCrashPoint(CrashPostWALAppend); !IsCrash(err) {
		t.Fatalf("first encounter with Hit=0 did not fire: %v", err)
	}
}

func TestSetCrashPlanResets(t *testing.T) {
	s := New(DefaultModel())
	s.SetCrashPlan(CrashPlan{Point: CrashMidCompaction})
	if err := s.AtCrashPoint(CrashMidCompaction); !IsCrash(err) {
		t.Fatalf("plan did not fire: %v", err)
	}
	s.SetCrashPlan(CrashPlan{})
	if s.Crashed() {
		t.Fatal("clearing the plan left the sim crashed")
	}
	if err := s.AtCrashPoint(CrashMidCompaction); err != nil {
		t.Fatalf("cleared plan still fires: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after reset: %v", err)
	}
}

func TestSyncChargesBarrier(t *testing.T) {
	s := New(DefaultModel())
	before := s.Now()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.Syncs() != 1 {
		t.Fatalf("Syncs = %d, want 1", s.Syncs())
	}
	if d := s.Now() - before; d != s.Model().RandomWrite {
		t.Fatalf("barrier charged %v, want one random write (%v)", d, s.Model().RandomWrite)
	}
}

func TestClockCrashDelegation(t *testing.T) {
	s := New(DefaultModel())
	c := s.Fork()
	s.SetCrashPlan(CrashPlan{Point: CrashPostWALAppend})
	if err := c.AtCrashPoint(CrashPostWALAppend); !IsCrash(err) {
		t.Fatalf("fork did not see the parent's cut: %v", err)
	}
	if err := c.Sync(); !IsCrash(err) {
		t.Fatalf("fork Sync survived the parent's cut: %v", err)
	}
	if !s.Crashed() {
		t.Fatal("cut via fork did not crash the parent")
	}
}

func TestCrashErrorMessageNamesPoint(t *testing.T) {
	e := &CrashError{Point: CrashPreManifestRename, Hit: 2}
	want := fmt.Sprintf("iosim: simulated power cut at %s (hit 2)", CrashPreManifestRename)
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}
