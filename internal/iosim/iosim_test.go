package iosim

import (
	"testing"
	"time"
)

func testModel() Model {
	return Model{
		RandomRead:      10 * time.Millisecond,
		SequentialRead:  1 * time.Millisecond,
		RandomWrite:     10 * time.Millisecond,
		SequentialWrite: 1 * time.Millisecond,
		PageSize:        4096,
	}
}

func TestSequentialDetection(t *testing.T) {
	s := New(testModel())
	f := s.Register()
	s.ReadPage(f, 0) // random: first access
	s.ReadPage(f, 1) // sequential
	s.ReadPage(f, 2) // sequential
	s.ReadPage(f, 9) // random: skip
	s.ReadPage(f, 3) // random: backwards
	c := s.Counters()
	if c.RandomReads != 3 || c.SequentialReads != 2 {
		t.Fatalf("counters = %+v, want 3 random / 2 sequential", c)
	}
	want := 3*10*time.Millisecond + 2*time.Millisecond
	if s.Now() != want {
		t.Fatalf("clock = %v, want %v", s.Now(), want)
	}
}

func TestInterleavedFilesBreakSequentiality(t *testing.T) {
	s := New(testModel())
	a, b := s.Register(), s.Register()
	s.ReadPage(a, 0)
	s.ReadPage(b, 0) // head moved to b: random
	s.ReadPage(a, 1) // head back to a: random even though page follows
	c := s.Counters()
	if c.RandomReads != 3 || c.SequentialReads != 0 {
		t.Fatalf("counters = %+v, want all random", c)
	}
}

func TestWriteCosts(t *testing.T) {
	s := New(testModel())
	f := s.Register()
	s.WritePage(f, 0)
	s.WritePage(f, 1)
	c := s.Counters()
	if c.RandomWrites != 1 || c.SequentialWrites != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Writes() != 2 || c.Reads() != 0 {
		t.Fatalf("totals wrong: %+v", c)
	}
}

func TestReadAfterWriteIsSequential(t *testing.T) {
	s := New(testModel())
	f := s.Register()
	s.WritePage(f, 0)
	s.ReadPage(f, 1) // head is after page 0, so this is sequential
	if c := s.Counters(); c.SequentialReads != 1 {
		t.Fatalf("read after write not sequential: %+v", c)
	}
}

func TestScanCost(t *testing.T) {
	s := New(testModel())
	if s.ScanCost(0) != 0 {
		t.Fatal("empty scan should cost nothing")
	}
	want := 10*time.Millisecond + 99*time.Millisecond
	if got := s.ScanCost(100); got != want {
		t.Fatalf("ScanCost(100) = %v, want %v", got, want)
	}
	// A real scan through ReadPage should cost exactly ScanCost.
	f := s.Register()
	before := s.Now()
	for i := int64(0); i < 100; i++ {
		s.ReadPage(f, i)
	}
	if got := s.Now() - before; got != want {
		t.Fatalf("actual scan cost %v, want %v", got, want)
	}
}

func TestAdvance(t *testing.T) {
	s := New(testModel())
	s.Advance(5 * time.Second)
	s.Advance(-time.Second) // ignored
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid model should panic")
		}
	}()
	New(Model{})
}

func TestDefaultModelRatio(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(m.RandomRead) / float64(m.SequentialRead)
	// The paper's testbed had a random:sequential page cost ratio of ~8:1.
	if ratio < 5 || ratio > 15 {
		t.Fatalf("default model ratio %.1f outside plausible band", ratio)
	}
}
