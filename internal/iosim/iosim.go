// Package iosim provides a deterministic cost model for rotating-disk I/O.
//
// The paper's experiments were run on 15,000 RPM SCSI disks circa 2006
// (~100 random I/Os per second, ~53 MB/s sequential transfer, 64 KB pages).
// All of its figures normalize elapsed time to "% of the time required to
// scan the relation", so the quantity that determines every curve shape is
// the ratio of a random page access to a sequential page transfer, together
// with the access pattern each algorithm generates. This package replays
// exactly that: a Sim owns a virtual clock and per-file disk-head positions;
// each page access advances the clock by either the random service time or
// the sequential transfer time depending on whether the head is already
// positioned past the preceding page of the same file.
//
// Structures never look at the clock to make decisions; it exists purely so
// the benchmark harness can plot samples-retrieved against simulated time on
// the same axes the paper uses.
//
// # Concurrency
//
// A Sim is safe for concurrent use. Because random-versus-sequential
// classification depends on the order in which accesses move the disk head,
// charging a shared Sim from several goroutines would make the split between
// the counters (and hence the clock) depend on goroutine scheduling. Workers
// that need deterministic accounting therefore charge a private Clock
// obtained from Sim.Fork: each Clock classifies accesses against its own
// head state (deterministic for a single stream regardless of what other
// streams do) and contributes every charge to the parent Sim's totals with
// atomic additions, which commute. The parent's aggregate clock and counters
// are thus the same for any interleaving and any worker count, while each
// stream's own elapsed time is exactly what a single-stream run would
// measure.
package iosim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Model describes the disk being simulated.
type Model struct {
	// RandomRead is the full service time of a page read that requires
	// repositioning the head (seek + rotational delay + transfer).
	RandomRead time.Duration
	// SequentialRead is the cost of transferring one page when the head is
	// already positioned immediately before it.
	SequentialRead time.Duration
	// RandomWrite and SequentialWrite are the corresponding write costs.
	RandomWrite, SequentialWrite time.Duration
	// PageSize is the size of one disk page in bytes.
	PageSize int
}

// DefaultModel returns a model calibrated to the paper's testbed: 64 KB
// pages, 100 random I/Os per second and a sequential rate that scans 20 GB
// in the ~375 s the paper's x-axes imply (~53 MB/s, i.e. 1.2 ms per page).
func DefaultModel() Model {
	return Model{
		RandomRead:      10 * time.Millisecond,
		SequentialRead:  1200 * time.Microsecond,
		RandomWrite:     10 * time.Millisecond,
		SequentialWrite: 1200 * time.Microsecond,
		PageSize:        64 * 1024,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.PageSize <= 0 {
		return fmt.Errorf("iosim: page size must be positive, got %d", m.PageSize)
	}
	if m.RandomRead <= 0 || m.SequentialRead <= 0 || m.RandomWrite <= 0 || m.SequentialWrite <= 0 {
		return fmt.Errorf("iosim: all access costs must be positive")
	}
	return nil
}

// FileID identifies a file registered with a Sim.
type FileID int32

// Counters aggregates the I/O activity observed by a Sim.
type Counters struct {
	RandomReads      int64
	SequentialReads  int64
	RandomWrites     int64
	SequentialWrites int64
}

// Reads returns the total number of page reads.
func (c Counters) Reads() int64 { return c.RandomReads + c.SequentialReads }

// Writes returns the total number of page writes.
func (c Counters) Writes() int64 { return c.RandomWrites + c.SequentialWrites }

// Charger charges simulated time for page accesses. Both *Sim (shared,
// synchronized) and *Clock (private, per stream) implement it; pagefile
// routes every access through one. BeginRead consults the active FaultPlan
// for the next read attempt of a page (advancing the charger's per-page
// attempt cursor and charging any latency spike), and NoteFault records
// fault outcomes the storage layer observes (rereads, corrupt pages, dead
// pages) so they show up in FaultCounters.
type Charger interface {
	ReadPage(f FileID, page int64)
	WritePage(f FileID, page int64)
	Advance(d time.Duration)
	BeginRead(f FileID, page int64) Fault
	NoteFault(k FaultKind)
	FaultPlan() FaultPlan
}

// Sim is a simulated disk: a virtual clock plus head-position tracking.
// All methods are safe for concurrent use.
type Sim struct {
	model Model

	now      atomic.Int64 // accumulated nanoseconds
	counters [4]atomic.Int64

	// mu guards the head state used to classify accesses charged directly
	// to the Sim (Clock forks keep their own head state).
	mu sync.Mutex
	// head tracks, per registered file, the page index immediately after the
	// last page accessed, or -1 if the head is not positioned in that file.
	head     []int64 // guarded by mu
	headFile FileID  // guarded by mu; file the head is currently in, or -1

	// plan is the active fault schedule; nil means no faults.
	plan atomic.Pointer[FaultPlan]
	// faultMu guards the per-page read-attempt cursors used by flaky-page
	// burst accounting for accesses charged directly to the Sim (Clock forks
	// keep their own cursors).
	faultMu  sync.Mutex
	attempts map[attemptKey]int // guarded by faultMu
	faults   [numFaultKinds]atomic.Int64

	// crashMu guards the crash schedule and the crashed state; syncs counts
	// durability barriers (see crash.go).
	crashMu   sync.Mutex
	crashPlan CrashPlan             // guarded by crashMu
	crashErr  *CrashError           // guarded by crashMu; non-nil once power is cut
	crashHits [numCrashPoints]int64 // guarded by crashMu; per-point encounter counts
	syncs     atomic.Int64
}

// indices into the counter array.
const (
	cRandomRead = iota
	cSeqRead
	cRandomWrite
	cSeqWrite
)

// New returns a Sim using the given model. It panics if the model is
// invalid, which indicates a programming error in experiment setup.
func New(model Model) *Sim {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Sim{model: model, headFile: -1}
}

// Model returns the disk model in use.
func (s *Sim) Model() Model { return s.model }

// Register allocates a FileID for a new file on this disk.
func (s *Sim) Register() FileID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := FileID(len(s.head))
	s.head = append(s.head, -1)
	return id
}

// Now returns the current simulated time: the total disk-busy time of every
// access charged to the Sim, directly or through a forked Clock.
func (s *Sim) Now() time.Duration { return time.Duration(s.now.Load()) }

// Counters returns a snapshot of the I/O counters.
func (s *Sim) Counters() Counters {
	return Counters{
		RandomReads:      s.counters[cRandomRead].Load(),
		SequentialReads:  s.counters[cSeqRead].Load(),
		RandomWrites:     s.counters[cRandomWrite].Load(),
		SequentialWrites: s.counters[cSeqWrite].Load(),
	}
}

// Advance adds d of pure computation time to the clock. The reproduction is
// I/O-bound like the paper's testbed, so this is rarely used, but it lets
// harnesses model CPU-heavy consumers if desired.
func (s *Sim) Advance(d time.Duration) {
	if d > 0 {
		s.now.Add(int64(d))
	}
}

// charge records one access of the given kind (a counter index).
func (s *Sim) charge(kind int, d time.Duration) {
	s.counters[kind].Add(1)
	s.now.Add(int64(d))
}

// sequentialLocked reports whether accessing page of file f continues the
// current head position, and updates the head either way. Callers hold mu.
func (s *Sim) sequentialLocked(f FileID, page int64) bool {
	seq := s.headFile == f && s.head[f] == page
	s.headFile = f
	s.head[f] = page + 1
	return seq
}

// ReadPage charges the clock for reading the given page of file f.
func (s *Sim) ReadPage(f FileID, page int64) {
	s.mu.Lock()
	seq := s.sequentialLocked(f, page)
	s.mu.Unlock()
	if seq {
		s.charge(cSeqRead, s.model.SequentialRead)
	} else {
		s.charge(cRandomRead, s.model.RandomRead)
	}
}

// WritePage charges the clock for writing the given page of file f.
func (s *Sim) WritePage(f FileID, page int64) {
	s.mu.Lock()
	seq := s.sequentialLocked(f, page)
	s.mu.Unlock()
	if seq {
		s.charge(cSeqWrite, s.model.SequentialWrite)
	} else {
		s.charge(cRandomWrite, s.model.RandomWrite)
	}
}

// ScanCost returns the time a pure sequential scan of n pages would take:
// one random access to position the head followed by n-1 sequential
// transfers. This is the paper's baseline "time required to scan the
// relation".
func (s *Sim) ScanCost(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return s.model.RandomRead + time.Duration(n-1)*s.model.SequentialRead
}

// Fork returns a fresh Clock contributing to s. The Clock starts at time
// zero with the head unpositioned and fresh fault-attempt cursors, so its
// elapsed time, counters and fault schedule are exactly those of a single
// stream running alone on a disk of the same model and fault plan.
func (s *Sim) Fork() *Clock {
	return &Clock{
		model:    s.model,
		parent:   s,
		headFile: -1,
		head:     make(map[FileID]int64),
		attempts: make(map[attemptKey]int),
	}
}

// Clock is a private virtual clock for one stream or worker, created with
// Sim.Fork. It is NOT safe for concurrent use; each goroutine charges its
// own Clock. Every charge also flows into the parent Sim's clock and
// counters, so shared totals stay complete (and deterministic, because
// contributions commute) while the Clock's own state gives the stream's
// single-stream cost.
type Clock struct {
	model    Model
	parent   *Sim
	now      time.Duration
	counters Counters
	headFile FileID
	head     map[FileID]int64

	// attempts holds the stream's private per-page read-attempt cursors, so
	// a stream's fault schedule depends only on its own access sequence —
	// never on what concurrent streams do.
	attempts map[attemptKey]int
	faults   FaultCounters
}

// Model returns the disk model in use.
func (c *Clock) Model() Model { return c.model }

// Now returns the stream's elapsed simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Counters returns the stream's own I/O counters.
func (c *Clock) Counters() Counters { return c.counters }

// Advance adds d of pure computation time to the stream's clock (and the
// parent's).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
		if c.parent != nil {
			c.parent.now.Add(int64(d))
		}
	}
}

// sequential classifies an access against the stream's private head state.
func (c *Clock) sequential(f FileID, page int64) bool {
	h, ok := c.head[f]
	seq := ok && c.headFile == f && h == page
	c.headFile = f
	c.head[f] = page + 1
	return seq
}

func (c *Clock) charge(kind int, d time.Duration, n *int64) {
	c.now += d
	*n++
	if c.parent != nil {
		c.parent.charge(kind, d)
	}
}

// ReadPage charges the stream's clock for reading the given page of file f.
func (c *Clock) ReadPage(f FileID, page int64) {
	if c.sequential(f, page) {
		c.charge(cSeqRead, c.model.SequentialRead, &c.counters.SequentialReads)
	} else {
		c.charge(cRandomRead, c.model.RandomRead, &c.counters.RandomReads)
	}
}

// WritePage charges the stream's clock for writing the given page of file f.
func (c *Clock) WritePage(f FileID, page int64) {
	if c.sequential(f, page) {
		c.charge(cSeqWrite, c.model.SequentialWrite, &c.counters.SequentialWrites)
	} else {
		c.charge(cRandomWrite, c.model.RandomWrite, &c.counters.RandomWrites)
	}
}
