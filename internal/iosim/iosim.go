// Package iosim provides a deterministic cost model for rotating-disk I/O.
//
// The paper's experiments were run on 15,000 RPM SCSI disks circa 2006
// (~100 random I/Os per second, ~53 MB/s sequential transfer, 64 KB pages).
// All of its figures normalize elapsed time to "% of the time required to
// scan the relation", so the quantity that determines every curve shape is
// the ratio of a random page access to a sequential page transfer, together
// with the access pattern each algorithm generates. This package replays
// exactly that: a Sim owns a virtual clock and per-file disk-head positions;
// each page access advances the clock by either the random service time or
// the sequential transfer time depending on whether the head is already
// positioned past the preceding page of the same file.
//
// Structures never look at the clock to make decisions; it exists purely so
// the benchmark harness can plot samples-retrieved against simulated time on
// the same axes the paper uses.
package iosim

import (
	"fmt"
	"time"
)

// Model describes the disk being simulated.
type Model struct {
	// RandomRead is the full service time of a page read that requires
	// repositioning the head (seek + rotational delay + transfer).
	RandomRead time.Duration
	// SequentialRead is the cost of transferring one page when the head is
	// already positioned immediately before it.
	SequentialRead time.Duration
	// RandomWrite and SequentialWrite are the corresponding write costs.
	RandomWrite, SequentialWrite time.Duration
	// PageSize is the size of one disk page in bytes.
	PageSize int
}

// DefaultModel returns a model calibrated to the paper's testbed: 64 KB
// pages, 100 random I/Os per second and a sequential rate that scans 20 GB
// in the ~375 s the paper's x-axes imply (~53 MB/s, i.e. 1.2 ms per page).
func DefaultModel() Model {
	return Model{
		RandomRead:      10 * time.Millisecond,
		SequentialRead:  1200 * time.Microsecond,
		RandomWrite:     10 * time.Millisecond,
		SequentialWrite: 1200 * time.Microsecond,
		PageSize:        64 * 1024,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.PageSize <= 0 {
		return fmt.Errorf("iosim: page size must be positive, got %d", m.PageSize)
	}
	if m.RandomRead <= 0 || m.SequentialRead <= 0 || m.RandomWrite <= 0 || m.SequentialWrite <= 0 {
		return fmt.Errorf("iosim: all access costs must be positive")
	}
	return nil
}

// FileID identifies a file registered with a Sim.
type FileID int32

// Counters aggregates the I/O activity observed by a Sim.
type Counters struct {
	RandomReads      int64
	SequentialReads  int64
	RandomWrites     int64
	SequentialWrites int64
}

// Reads returns the total number of page reads.
func (c Counters) Reads() int64 { return c.RandomReads + c.SequentialReads }

// Writes returns the total number of page writes.
func (c Counters) Writes() int64 { return c.RandomWrites + c.SequentialWrites }

// Sim is a simulated disk: a virtual clock plus head-position tracking.
// A Sim is not safe for concurrent use; each experiment owns one.
type Sim struct {
	model    Model
	now      time.Duration
	counters Counters

	// head tracks, per registered file, the page index immediately after the
	// last page accessed, or -1 if the head is not positioned in that file.
	head     []int64
	headFile FileID // file the head is currently in, or -1
}

// New returns a Sim using the given model. It panics if the model is
// invalid, which indicates a programming error in experiment setup.
func New(model Model) *Sim {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Sim{model: model, headFile: -1}
}

// Model returns the disk model in use.
func (s *Sim) Model() Model { return s.model }

// Register allocates a FileID for a new file on this disk.
func (s *Sim) Register() FileID {
	id := FileID(len(s.head))
	s.head = append(s.head, -1)
	return id
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Counters returns a snapshot of the I/O counters.
func (s *Sim) Counters() Counters { return s.counters }

// Advance adds d of pure computation time to the clock. The reproduction is
// I/O-bound like the paper's testbed, so this is rarely used, but it lets
// harnesses model CPU-heavy consumers if desired.
func (s *Sim) Advance(d time.Duration) {
	if d > 0 {
		s.now += d
	}
}

// sequential reports whether accessing page of file f continues the current
// head position, and updates the head either way.
func (s *Sim) sequential(f FileID, page int64) bool {
	seq := s.headFile == f && s.head[f] == page
	s.headFile = f
	s.head[f] = page + 1
	return seq
}

// ReadPage charges the clock for reading the given page of file f.
func (s *Sim) ReadPage(f FileID, page int64) {
	if s.sequential(f, page) {
		s.now += s.model.SequentialRead
		s.counters.SequentialReads++
	} else {
		s.now += s.model.RandomRead
		s.counters.RandomReads++
	}
}

// WritePage charges the clock for writing the given page of file f.
func (s *Sim) WritePage(f FileID, page int64) {
	if s.sequential(f, page) {
		s.now += s.model.SequentialWrite
		s.counters.SequentialWrites++
	} else {
		s.now += s.model.RandomWrite
		s.counters.RandomWrites++
	}
}

// ScanCost returns the time a pure sequential scan of n pages would take:
// one random access to position the head followed by n-1 sequential
// transfers. This is the paper's baseline "time required to scan the
// relation".
func (s *Sim) ScanCost(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return s.model.RandomRead + time.Duration(n-1)*s.model.SequentialRead
}
