package iosim

import (
	"testing"
	"time"
)

func TestFarmNowIsMaxAndCountersSum(t *testing.T) {
	f := NewFarm(DefaultModel(), 3)
	a, b := f.Disk(0).Register(), f.Disk(1).Register()
	f.Disk(0).ReadPage(a, 0) // random
	f.Disk(0).ReadPage(a, 1) // sequential
	f.Disk(1).ReadPage(b, 7) // random
	m := f.Model()
	if got, want := f.Now(), m.RandomRead+m.SequentialRead; got != want {
		t.Fatalf("farm Now = %v, want max disk time %v", got, want)
	}
	c := f.Counters()
	if c.RandomReads != 2 || c.SequentialReads != 1 {
		t.Fatalf("summed counters = %+v, want 2 random + 1 sequential", c)
	}
}

func TestFarmIndependentHeads(t *testing.T) {
	f := NewFarm(DefaultModel(), 2)
	a, b := f.Disk(0).Register(), f.Disk(1).Register()
	// Alternating across disks must stay sequential on each: separate
	// spindles do not share a head.
	f.Disk(0).ReadPage(a, 0)
	f.Disk(1).ReadPage(b, 0)
	f.Disk(0).ReadPage(a, 1)
	f.Disk(1).ReadPage(b, 1)
	for i := 0; i < 2; i++ {
		c := f.Disk(i).Counters()
		if c.RandomReads != 1 || c.SequentialReads != 1 {
			t.Fatalf("disk %d counters = %+v, want 1 random + 1 sequential", i, c)
		}
	}
}

func TestFarmFaultPlanSeedsDiffer(t *testing.T) {
	f := NewFarm(DefaultModel(), 4)
	f.SetFaultPlan(FaultPlan{Seed: 42, TransientRate: 0.5})
	seen := make(map[uint64]bool)
	for i := 0; i < f.K(); i++ {
		s := f.Disk(i).FaultPlan().Seed
		if seen[s] {
			t.Fatalf("disk %d reuses fault seed %d", i, s)
		}
		seen[s] = true
	}
}

func TestFarmOfAndScanCost(t *testing.T) {
	s1, s2 := New(DefaultModel()), New(DefaultModel())
	f := FarmOf(s1, s2)
	if f.K() != 2 || f.Disk(1) != s2 {
		t.Fatal("FarmOf did not preserve members")
	}
	if got, want := f.ScanCost(10), s1.ScanCost(10); got != want {
		t.Fatalf("farm ScanCost = %v, want single-disk %v", got, want)
	}
	var zero time.Duration
	if f.Now() != zero {
		t.Fatalf("fresh farm Now = %v, want 0", f.Now())
	}
}
