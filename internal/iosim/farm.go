package iosim

import "time"

// Farm is a bank of K independent simulated disks, one per shard of a
// partitioned view. Each disk is a full *Sim with its own clock, head
// state and fault schedule, so shard I/O proceeds in parallel exactly the
// way K physical spindles would: work charged to disk i never moves disk
// j's head or clock.
//
// Farm-level time is the max of the member clocks — the wall time a
// harness would observe waiting for all spindles — while the counters sum,
// giving total I/O work. All methods are safe for concurrent use (the
// slice is immutable after New; members synchronize internally).
type Farm struct {
	sims []*Sim
}

// NewFarm returns a Farm of k disks of the given model. It panics if k is
// not positive or the model is invalid, which indicates a programming
// error in experiment setup.
func NewFarm(model Model, k int) *Farm {
	if k <= 0 {
		panic("iosim: farm needs at least one disk")
	}
	sims := make([]*Sim, k)
	for i := range sims {
		sims[i] = New(model)
	}
	return &Farm{sims: sims}
}

// FarmOf wraps existing Sims as a Farm. It panics if sims is empty or
// contains a nil entry.
func FarmOf(sims ...*Sim) *Farm {
	if len(sims) == 0 {
		panic("iosim: farm needs at least one disk")
	}
	for _, s := range sims {
		if s == nil {
			panic("iosim: nil disk in farm")
		}
	}
	return &Farm{sims: append([]*Sim(nil), sims...)}
}

// K returns the number of disks.
func (f *Farm) K() int { return len(f.sims) }

// Disk returns disk i.
func (f *Farm) Disk(i int) *Sim { return f.sims[i] }

// Model returns the disk model in use (all members share it).
func (f *Farm) Model() Model { return f.sims[0].Model() }

// Now returns the farm's elapsed simulated time: the maximum over the
// member disks, i.e. the time at which the slowest spindle finishes the
// work charged so far.
func (f *Farm) Now() time.Duration {
	var max time.Duration
	for _, s := range f.sims {
		if n := s.Now(); n > max {
			max = n
		}
	}
	return max
}

// Counters returns the summed I/O counters of every disk.
func (f *Farm) Counters() Counters {
	var t Counters
	for _, s := range f.sims {
		c := s.Counters()
		t.RandomReads += c.RandomReads
		t.SequentialReads += c.SequentialReads
		t.RandomWrites += c.RandomWrites
		t.SequentialWrites += c.SequentialWrites
	}
	return t
}

// FaultCounters returns the summed fault counters of every disk.
func (f *Farm) FaultCounters() FaultCounters {
	var t FaultCounters
	for _, s := range f.sims {
		c := s.FaultCounters()
		t.Transient += c.Transient
		t.LatencySpikes += c.LatencySpikes
		t.Rereads += c.Rereads
		t.CorruptPages += c.CorruptPages
		t.DeadPages += c.DeadPages
	}
	return t
}

// SetFaultPlan installs the plan on every disk. Disk i gets the plan with
// its seed mixed with the disk index, so shards fail independently rather
// than in lockstep (a plan with TransientRate 0.1 makes each shard's pages
// flaky independently, as separate spindles would be).
func (f *Farm) SetFaultPlan(p FaultPlan) {
	for i, s := range f.sims {
		dp := p
		dp.Seed = p.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
		s.SetFaultPlan(dp)
	}
}

// SetFaultPlanOn installs the plan on disk i only, leaving the other
// disks' schedules untouched (targeted shard-kill scenarios).
func (f *Farm) SetFaultPlanOn(i int, p FaultPlan) {
	f.sims[i].SetFaultPlan(p)
}

// ScanCost returns the time a pure sequential scan of n pages on a single
// member disk would take (the paper's normalization baseline; sharding
// does not change the baseline, which is defined against one spindle).
func (f *Farm) ScanCost(n int64) time.Duration { return f.sims[0].ScanCost(n) }
