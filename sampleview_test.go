package sampleview

import (
	"io"
	"math/rand/v2"
	"path/filepath"
	"testing"
)

// genRecords produces n deterministic records with keys and amounts
// uniform on [0, domain).
func genRecords(n int, seed uint64) []Record {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	const domain = 1 << 20
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Key:    rng.Int64N(domain),
			Amount: rng.Int64N(domain),
			Seq:    uint64(i),
		}
	}
	return recs
}

func matching(recs []Record, q Box) map[uint64]bool {
	m := map[uint64]bool{}
	for i := range recs {
		if q.ContainsRecord(&recs[i]) {
			m[recs[i].Seq] = true
		}
	}
	return m
}

func TestCreateQueryRoundTrip(t *testing.T) {
	recs := genRecords(5000, 1)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.Count() != 5000 || v.Dims() != 1 {
		t.Fatalf("Count=%d Dims=%d", v.Count(), v.Dims())
	}
	q := Box1D(0, 1<<19)
	want := matching(recs, q)
	stream, err := v.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !want[rec.Seq] || got[rec.Seq] {
			t.Fatal("bad stream emission")
		}
		got[rec.Seq] = true
	}
	if len(got) != len(want) {
		t.Fatalf("stream returned %d of %d matching records", len(got), len(want))
	}
}

func TestPersistentViewReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sale.view")
	recs := genRecords(2000, 2)
	v, err := CreateFromSlice(path, recs, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Count() != 2000 {
		t.Fatalf("reopened Count = %d", v2.Count())
	}
	q := Box1D(1<<18, 1<<19)
	want := matching(recs, q)
	stream, err := v2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := stream.Next(); err != nil {
			break
		}
		n++
	}
	if n != len(want) {
		t.Fatalf("reopened stream returned %d, want %d", n, len(want))
	}
}

func TestSampleHelper(t *testing.T) {
	recs := genRecords(3000, 3)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	stream, err := v.Query(FullBox(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := stream.Sample(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 100 {
		t.Fatalf("Sample returned %d records", len(s))
	}
	// Exhausting returns fewer.
	rest, err := stream.Sample(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(s)+len(rest) != 3000 {
		t.Fatalf("total %d, want 3000", len(s)+len(rest))
	}
}

func TestTwoDimensionalView(t *testing.T) {
	recs := genRecords(4000, 4)
	v, err := CreateFromSlice("", recs, Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	q := Box2D(0, 1<<19, 1<<18, 1<<20)
	want := matching(recs, q)
	stream, err := v.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !want[rec.Seq] {
			t.Fatal("non-matching record emitted")
		}
		got++
	}
	if got != len(want) {
		t.Fatalf("2-d stream returned %d of %d", got, len(want))
	}
}

func TestAppendAndQuery(t *testing.T) {
	recs := genRecords(1000, 5)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	extra := genRecords(200, 6)
	for i := range extra {
		extra[i].Seq += 1 << 40
		v.Append(extra[i])
	}
	if v.PendingAppends() != 200 || v.Count() != 1200 {
		t.Fatalf("PendingAppends=%d Count=%d", v.PendingAppends(), v.Count())
	}
	stream, err := v.Query(FullBox(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[rec.Seq] {
			t.Fatal("duplicate record")
		}
		seen[rec.Seq] = true
	}
	if len(seen) != 1200 {
		t.Fatalf("stream returned %d records, want 1200", len(seen))
	}
}

func TestCompact(t *testing.T) {
	recs := genRecords(1000, 7)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	extra := genRecords(100, 8)
	for i := range extra {
		extra[i].Seq += 1 << 40
		v.Append(extra[i])
	}
	v2, err := v.Compact("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.PendingAppends() != 0 || v2.Count() != 1100 {
		t.Fatalf("compacted PendingAppends=%d Count=%d", v2.PendingAppends(), v2.Count())
	}
}

func TestEstimatorIntegration(t *testing.T) {
	recs := genRecords(20000, 9)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	q := Box1D(0, 1<<19) // ~half the records
	est, err := v.NewEstimator(q)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := v.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		rec, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		est.Add(float64(rec.Amount))
	}
	// True average Amount of the matching records.
	var sum float64
	var n int64
	for i := range recs {
		if q.ContainsRecord(&recs[i]) {
			sum += float64(recs[i].Amount)
			n++
		}
	}
	truth := sum / float64(n)
	lo, hi := est.MeanInterval(0.999)
	if truth < lo || truth > hi {
		t.Fatalf("true mean %v outside 99.9%% interval [%v,%v]", truth, lo, hi)
	}
	sumEst, err := est.SumEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if sumEst < sum*0.9 || sumEst > sum*1.1 {
		t.Fatalf("sum estimate %v, true %v", sumEst, sum)
	}
}

func TestEstimateCount(t *testing.T) {
	recs := genRecords(10000, 10)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	q := Box1D(0, 1<<18) // ~25%
	want := float64(len(matching(recs, q)))
	got, err := v.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("EstimateCount = %v, exact %v", got, want)
	}
}

func TestStatsReporting(t *testing.T) {
	recs := genRecords(1000, 11)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	st := v.Stats()
	if st.Counters.Writes() == 0 {
		t.Fatal("construction should have recorded writes")
	}
}
