package sampleview

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentStreamsAndAppends drives a view from many goroutines at
// once (independent query streams, appends, estimates); run with -race.
func TestConcurrentStreamsAndAppends(t *testing.T) {
	recs := genRecords(20_000, 21)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Four concurrent readers with different predicates.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := int64(g) * (1 << 18)
			stream, err := v.Query(Box1D(lo, lo+(1<<18)))
			if err != nil {
				errs <- err
				return
			}
			seen := map[uint64]bool{}
			for i := 0; i < 1500; i++ {
				rec, err := stream.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- err
					return
				}
				if seen[rec.Seq] {
					t.Error("duplicate within a stream")
					return
				}
				seen[rec.Seq] = true
			}
		}(g)
	}
	// A concurrent writer appending records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			v.Append(Record{Key: int64(i), Amount: int64(i), Seq: uint64(1<<40 + i)})
		}
	}()
	// Concurrent estimators and stats readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := v.EstimateCount(Box1D(0, 1<<19)); err != nil {
				errs <- err
				return
			}
			_ = v.Stats()
			_ = v.Count()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v.PendingAppends() != 500 {
		t.Fatalf("PendingAppends = %d", v.PendingAppends())
	}
}
