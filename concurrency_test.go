package sampleview

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentStreamsAndAppends drives a view from many goroutines at
// once (independent query streams, appends, estimates); run with -race.
func TestConcurrentStreamsAndAppends(t *testing.T) {
	recs := genRecords(20_000, 21)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Four concurrent readers with different predicates.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := int64(g) * (1 << 18)
			stream, err := v.Query(Box1D(lo, lo+(1<<18)))
			if err != nil {
				errs <- err
				return
			}
			seen := map[uint64]bool{}
			for i := 0; i < 1500; i++ {
				rec, err := stream.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- err
					return
				}
				if seen[rec.Seq] {
					t.Error("duplicate within a stream")
					return
				}
				seen[rec.Seq] = true
			}
		}(g)
	}
	// A concurrent writer appending records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			v.Append(Record{Key: int64(i), Amount: int64(i), Seq: uint64(1<<40 + i)})
		}
	}()
	// Concurrent estimators and stats readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := v.EstimateCount(Box1D(0, 1<<19)); err != nil {
				errs <- err
				return
			}
			_ = v.Stats()
			_ = v.Count()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v.PendingAppends() != 500 {
		t.Fatalf("PendingAppends = %d", v.PendingAppends())
	}
}

// TestManyConcurrentStreams hammers one shared view with 32 goroutines,
// each driving its own stream to exhaustion over the same predicate. Every
// stream must deliver the full matching set exactly once (streams are
// independent without-replacement samples), and each stream's private
// clock must report the same single-stream cost no matter how the
// goroutines interleave.
func TestManyConcurrentStreams(t *testing.T) {
	const n = 10_000
	recs := genRecords(n, 33)
	v, err := CreateFromSlice("", recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	q := Box1D(0, 1<<19)
	want := 0
	for _, r := range recs {
		if r.Key <= 1<<19 {
			want++
		}
	}

	const goroutines = 32
	var wg sync.WaitGroup
	counts := make([]int, goroutines)
	times := make([]string, goroutines)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream, err := v.Query(q)
			if err != nil {
				errs <- err
				return
			}
			seen := map[uint64]bool{}
			for {
				rec, err := stream.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- err
					return
				}
				if seen[rec.Seq] {
					errs <- io.ErrUnexpectedEOF
					return
				}
				seen[rec.Seq] = true
			}
			counts[g] = len(seen)
			times[g] = stream.Stats().SimTime
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		if counts[g] != want {
			t.Fatalf("stream %d returned %d records, want %d", g, counts[g], want)
		}
		if times[g] != times[0] {
			t.Fatalf("stream %d cost %s, stream 0 cost %s: per-stream clocks should agree", g, times[g], times[0])
		}
	}
}

// TestConcurrentBuilds creates several views at once, each on its own
// simulated disk, and samples from each; run with -race.
func TestConcurrentBuilds(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := CreateFromSlice("", genRecords(5_000, uint64(g)), Options{
				Seed:             uint64(g),
				BuildParallelism: 1 + g%3,
			})
			if err != nil {
				errs <- err
				return
			}
			defer v.Close()
			s, err := v.Query(FullBox(1))
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Sample(100); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBuildParallelismByteIdentical is the public-API determinism
// guarantee: the stored view file is the same byte string whether it was
// built sequentially or by a pool of workers.
func TestBuildParallelismByteIdentical(t *testing.T) {
	recs := genRecords(30_000, 77)
	dir := t.TempDir()
	images := map[int][]byte{}
	for _, workers := range []int{1, runtime.NumCPU() + 1} {
		path := filepath.Join(dir, "view"+itoa(workers))
		v, err := CreateFromSlice(path, recs, Options{Seed: 5, BuildParallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		images[workers] = img
	}
	for workers, img := range images {
		if !bytes.Equal(img, images[1]) {
			t.Fatalf("view built with %d workers differs from sequential build (%d vs %d bytes)",
				workers, len(img), len(images[1]))
		}
	}
}
