package sampleview

import (
	"io"
	"sync"
	"testing"
)

// TestStreamCloseIdempotent checks the basic Close contract: repeated
// closes succeed, Next reports ErrStreamClosed afterwards, and Stats and
// Buffered stay usable.
func TestStreamCloseIdempotent(t *testing.T) {
	v, err := CreateFromSlice("", genRecords(5_000, 11), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	s, err := v.Query(Box1D(0, 1<<19))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(100); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if _, err := s.Next(); err != ErrStreamClosed {
		t.Fatalf("Next after Close: err = %v, want ErrStreamClosed", err)
	}
	if _, err := s.Sample(10); err != ErrStreamClosed {
		t.Fatalf("Sample after Close: err = %v, want ErrStreamClosed", err)
	}
	if s.Buffered() != 0 {
		t.Fatalf("Buffered after Close = %d, want 0", s.Buffered())
	}
	after := s.Stats()
	if after.SimTime != before.SimTime {
		t.Fatalf("Stats changed across Close: %s -> %s", before.SimTime, after.SimTime)
	}

	// The diffview-backed stream path (pending appends) must close too.
	v.Append(Record{Key: 1, Amount: 1, Seq: 1 << 40})
	ds, err := v.Query(Box1D(0, 1<<19))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Next(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Next(); err != ErrStreamClosed {
		t.Fatalf("diff stream Next after Close: err = %v, want ErrStreamClosed", err)
	}
}

// TestStreamCloseRace races Close against Next, Sample, Buffered and Stats
// from many goroutines — the collision the serving layer's idle reaper and
// a client cancel produce. Run with -race. Every Next must either return a
// valid record, io.EOF, or ErrStreamClosed; nothing may panic.
func TestStreamCloseRace(t *testing.T) {
	v, err := CreateFromSlice("", genRecords(20_000, 13), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	for round := 0; round < 8; round++ {
		s, err := v.Query(Box1D(0, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := s.Next()
					if err == io.EOF || err == ErrStreamClosed {
						return
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = s.Stats()
				_ = s.Buffered()
			}
		}()
		// Two racing closers (reaper and cancel).
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if _, err := s.Next(); err != ErrStreamClosed {
			t.Fatalf("Next after racing Close: err = %v, want ErrStreamClosed", err)
		}
	}
}
