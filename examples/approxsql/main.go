// Approximate SQL: the full online-aggregation pipeline the paper
// motivates, end to end - build a sample view, then answer an aggregate
// SQL query with confidence intervals that tighten as the online sample
// grows, stopping at a requested precision instead of scanning the data.
//
// Run with: go run ./examples/approxsql
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sampleview"
	"sampleview/internal/sqlish"
)

func main() {
	// A SALE relation where AMOUNT depends on the season, so per-bucket
	// answers differ.
	rng := rand.New(rand.NewPCG(99, 99))
	const n = 400_000
	recs := make([]sampleview.Record, n)
	for i := range recs {
		day := rng.Int64N(365)
		base := int64(20_000)
		if day >= 300 || day < 60 { // holiday season
			base = 60_000
		}
		recs[i] = sampleview.Record{
			Key:    day,
			Amount: base + rng.Int64N(30_000),
			Seq:    uint64(i),
		}
	}
	view, err := sampleview.CreateFromSlice("", recs, sampleview.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()

	sql := `SELECT COUNT(*), AVG(amount), MEDIAN(amount)
	        FROM sale
	        WHERE key BETWEEN 240 AND 359
	        GROUP BY bucket(key, 60)
	        CONFIDENCE 95 ERROR 2`
	fmt.Println("query:", sql)
	st, err := sqlish.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}

	q := st.Query
	q.ProgressEvery = 2000
	q.Progress = func(r *sampleview.AggResult) bool {
		fmt.Printf("\n-- %d samples consumed\n", r.Samples)
		printGroups(r)
		return true
	}
	res, err := view.RunQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	status := "approximate"
	if res.Exact {
		status = "exact (predicate exhausted)"
	}
	fmt.Printf("\n== final after %d samples (%s)\n", res.Samples, status)
	printGroups(res)

	// Show how little data the answer needed.
	var matching int
	for i := range recs {
		if q.Predicate.ContainsRecord(&recs[i]) {
			matching++
		}
	}
	fmt.Printf("\nanswered from %d samples out of %d matching records (%.1f%%)\n",
		res.Samples, matching, 100*float64(res.Samples)/float64(matching))
}

func printGroups(r *sampleview.AggResult) {
	for _, g := range r.Groups {
		fmt.Printf("  day %-12s", g.Key)
		for _, e := range g.Estimates {
			if e.HasCI && e.Lo != e.Hi {
				fmt.Printf("  %v=%.0f [%.0f, %.0f]", e.Agg.Kind, e.Value, e.Lo, e.Hi)
			} else {
				fmt.Printf("  %v=%.0f", e.Agg.Kind, e.Value)
			}
		}
		fmt.Println()
	}
}
