// Multi-dimensional sample views (paper Section VII): a k-d ACE Tree over
// (DAY, AMOUNT) answers sampling queries with predicates on both
// attributes, e.g. "sample the sales of week 30-40 with amounts between
// $100 and $500", and supports online aggregation over the box.
//
// Run with: go run ./examples/multidim
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand/v2"

	"sampleview"
)

func main() {
	rng := rand.New(rand.NewPCG(23, 23))
	const n = 300_000
	recs := make([]sampleview.Record, n)
	for i := range recs {
		recs[i] = sampleview.Record{
			Key:    rng.Int64N(3650),
			Amount: rng.Int64N(200_000),
			Seq:    uint64(i),
		}
	}

	// A two-dimensional view: INDEX ON (DAY, AMOUNT).
	view, err := sampleview.CreateFromSlice("", recs, sampleview.Options{Dims: 2, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()
	fmt.Printf("2-d sample view: %d records, height %d\n\n", view.Count(), view.Height())

	// Sample sales from days 180-360 with amounts 10000-100000.
	q := sampleview.Box2D(180, 360, 10_000, 100_000)
	stream, err := view.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := stream.Sample(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("online sample from the box predicate:")
	for _, r := range batch {
		fmt.Printf("  day=%-4d amount=%d\n", r.Key, r.Amount)
	}

	// Online COUNT/SUM estimate for the box.
	est, err := view.NewEstimator(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range batch {
		est.Add(float64(r.Amount))
	}
	for est.Count() < 2000 {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		est.Add(float64(rec.Amount))
	}
	sumLo, sumHi, err := est.SumInterval(0.95)
	if err != nil {
		log.Fatal(err)
	}
	var exact float64
	for i := range recs {
		if q.ContainsRecord(&recs[i]) {
			exact += float64(recs[i].Amount)
		}
	}
	fmt.Printf("\nonline SUM(AMOUNT) after %d samples: [%.0f, %.0f] at 95%%\n",
		est.Count(), sumLo, sumHi)
	fmt.Printf("exact SUM(AMOUNT):                    %.0f\n", exact)
}
