// Online aggregation: the paper's motivating application. The query
//
//	SELECT AVG(AMOUNT) FROM SALE WHERE DAY BETWEEN d1 AND d2
//
// is answered approximately: samples stream out of the view and a running
// estimate with a CLT confidence interval is reported, converging on the
// exact answer long before the predicate is exhausted.
//
// Run with: go run ./examples/onlineagg
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand/v2"

	"sampleview"
)

func main() {
	// SALE with seasonally varying amounts so the answer isn't trivially
	// the global mean.
	rng := rand.New(rand.NewPCG(7, 7))
	const n = 500_000
	recs := make([]sampleview.Record, n)
	var exactSum, exactN float64
	const d1, d2 = 900, 1400
	for i := range recs {
		day := rng.Int64N(3650)
		amount := 50_000 + day*20 + rng.Int64N(20_000) // drifts upward over time
		recs[i] = sampleview.Record{Key: day, Amount: amount, Seq: uint64(i)}
		if day >= d1 && day <= d2 {
			exactSum += float64(amount)
			exactN++
		}
	}
	exact := exactSum / exactN

	view, err := sampleview.CreateFromSlice("", recs, sampleview.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()

	q := sampleview.Box1D(d1, d2)
	stream, err := view.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	est, err := view.NewEstimator(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online AVG(AMOUNT) for DAY in [%d,%d]; exact answer %.2f\n", d1, d2, exact)
	fmt.Printf("%-10s %-12s %-28s %s\n", "samples", "estimate", "95% interval", "covers exact?")
	next := int64(100)
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		est.Add(float64(rec.Amount))
		if est.Count() == next {
			lo, hi := est.MeanInterval(0.95)
			fmt.Printf("%-10d %-12.2f [%.2f, %.2f]   %v\n",
				est.Count(), est.Mean(), lo, hi, lo <= exact && exact <= hi)
			next *= 4
		}
	}
	fmt.Printf("\nexhausted: n=%d final estimate %.2f (exact %.2f)\n",
		est.Count(), est.Mean(), exact)
}
