// Scalable clustering over an online sample, in the spirit of Bradley et
// al.'s scalable K-means (the paper's Section I cites it as a canonical
// consumer of randomized input orderings). Points inside a temporal range
// are clustered by consuming the view's online sample one record at a
// time with an incremental (MacQueen-style) K-means update; because every
// prefix of the stream is a uniform random sample, the centroids converge
// long before the predicate is exhausted.
//
// Run with: go run ./examples/kmeans
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"sort"

	"sampleview"
)

const k = 4

func main() {
	// SALE records whose (DAY-in-year, AMOUNT) pairs form four clusters:
	// e.g. winter/cheap, winter/expensive, summer/cheap, summer/expensive.
	rng := rand.New(rand.NewPCG(11, 11))
	centers := [k][2]float64{
		{60, 20_000}, {60, 90_000}, {240, 25_000}, {240, 80_000},
	}
	const n = 400_000
	recs := make([]sampleview.Record, n)
	for i := range recs {
		c := centers[rng.IntN(k)]
		day := int64(c[0] + rng.NormFloat64()*25)
		if day < 0 {
			day = 0
		}
		amount := int64(c[1] + rng.NormFloat64()*6000)
		recs[i] = sampleview.Record{Key: day, Amount: amount, Seq: uint64(i)}
	}

	view, err := sampleview.CreateFromSlice("", recs, sampleview.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()

	// Cluster only the sales with DAY in [0, 365).
	stream, err := view.Query(sampleview.Box1D(0, 364))
	if err != nil {
		log.Fatal(err)
	}

	// Incremental K-means over the online sample.
	var centroids [k][2]float64
	var counts [k]float64
	// Seed centroids from the first k samples (uniform, so unbiased).
	for i := 0; i < k; i++ {
		rec, err := stream.Next()
		if err != nil {
			log.Fatal(err)
		}
		centroids[i] = [2]float64{float64(rec.Key), float64(rec.Amount)}
		counts[i] = 1
	}

	report := func(consumed int) {
		cs := centroids
		sort.Slice(cs[:], func(i, j int) bool {
			if cs[i][0] != cs[j][0] {
				return cs[i][0] < cs[j][0]
			}
			return cs[i][1] < cs[j][1]
		})
		fmt.Printf("after %7d samples: ", consumed)
		for _, c := range cs {
			fmt.Printf("(%.0f, %.0f) ", c[0], c[1])
		}
		fmt.Println()
	}

	consumed := k
	next := 256
	const maxSamples = 60_000
	for consumed < maxSamples {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		x := [2]float64{float64(rec.Key), float64(rec.Amount)}
		best, bestD := 0, math.Inf(1)
		for i := 0; i < k; i++ {
			// Scale AMOUNT down so both dimensions contribute comparably.
			dx := x[0] - centroids[i][0]
			dy := (x[1] - centroids[i][1]) / 300
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = i, d
			}
		}
		counts[best]++
		centroids[best][0] += (x[0] - centroids[best][0]) / counts[best]
		centroids[best][1] += (x[1] - centroids[best][1]) / counts[best]
		consumed++
		if consumed == next {
			report(consumed)
			next *= 4
		}
	}
	report(consumed)
	fmt.Println("\ntrue generating centers (day, amount):")
	fmt.Println("  (60, 20000) (60, 90000) (240, 25000) (240, 80000)")
	fmt.Printf("\nclustered %d of %d matching records: the uniform online sample\n", consumed, n)
	fmt.Println("converges without ever reading most of the data.")
}
