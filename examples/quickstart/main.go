// Quickstart: build a materialized sample view over a synthetic SALE
// relation and draw an online random sample from a range predicate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"

	"sampleview"
)

func main() {
	// Generate a small SALE relation: DAY in [0, 3650) (ten years of
	// days), AMOUNT in cents.
	rng := rand.New(rand.NewPCG(42, 42))
	recs := make([]sampleview.Record, 200_000)
	for i := range recs {
		recs[i] = sampleview.Record{
			Key:    rng.Int64N(3650),          // DAY
			Amount: 100 + rng.Int64N(100_000), // AMOUNT
			Seq:    uint64(i),
		}
	}

	// CREATE MATERIALIZED SAMPLE VIEW MySam AS SELECT * FROM SALE INDEX ON DAY
	dir, err := os.MkdirTemp("", "sampleview-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mysam.view")
	view, err := sampleview.CreateFromSlice(path, recs, sampleview.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()
	fmt.Printf("built view %s: %d records, ACE tree height %d\n\n",
		path, view.Count(), view.Height())

	// SELECT * FROM SALE WHERE DAY BETWEEN 1000 AND 1090 — sampled.
	q := sampleview.Box1D(1000, 1090)
	stream, err := view.Query(q)
	if err != nil {
		log.Fatal(err)
	}

	first, err := stream.Sample(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first 10 records of the online sample (uniform over the predicate):")
	for _, r := range first {
		fmt.Printf("  day=%-5d amount=%d\n", r.Key, r.Amount)
	}

	// The stream keeps growing - and stays a uniform sample at every
	// prefix - until the predicate is exhausted.
	rest, err := stream.Sample(1 << 30)
	if err != nil {
		log.Fatal(err)
	}
	est, err := view.EstimateCount(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicate exhausted after %d records (view estimated %.0f)\n",
		len(first)+len(rest), est)

	st := view.Stats()
	fmt.Printf("I/O performed: %d random + %d sequential page reads (simulated disk time %s)\n",
		st.Counters.RandomReads, st.Counters.SequentialReads, st.SimTime)
}
