// Package sampleview provides materialized sample views: indexed,
// materialized views of a relation that support efficient online random
// sampling from arbitrary range predicates, after Joshi and Jermaine,
// "Materialized Sample Views for Database Approximation" (ICDE 2006).
//
// A sample view is the moral equivalent of
//
//	CREATE MATERIALIZED SAMPLE VIEW MySam
//	AS SELECT * FROM SALE
//	INDEX ON DAY
//
// Once built, the view answers "give me a growing uniform random sample of
// the records with DAY between x and y" at a rate far beyond one random
// I/O per sample: at every instant the records returned so far are a true
// uniform random sample, without replacement, of every record matching the
// predicate. That online property is what approximate query processing,
// online aggregation, and sampling-based data mining algorithms need.
//
// The view is stored as an ACE Tree (internal/core), the paper's index
// structure, whose leaves each carry h nested random samples ("sections")
// spanning exponentially shrinking key ranges. Views over one or two
// indexed dimensions are supported; appends are absorbed by a differential
// buffer and folded in by Compact.
//
// # Quick start
//
//	recs := make([]sampleview.Record, 0, 1_000_000)
//	// ... fill recs, Key is the indexed attribute ...
//	v, err := sampleview.CreateFromSlice("sale.view", recs, sampleview.Options{})
//	if err != nil { ... }
//	defer v.Close()
//
//	stream, err := v.Query(sampleview.Box1D(day1, day2))
//	for {
//	    rec, err := stream.Next()
//	    if err == io.EOF { break }
//	    // rec is the next element of an ever-growing uniform sample
//	}
//
// See the examples directory for online aggregation, clustering, and
// multi-dimensional uses, and DESIGN.md / EXPERIMENTS.md for how this
// implementation reproduces the paper's evaluation.
package sampleview
