package sampleview

// One benchmark per figure of the paper's evaluation, plus ablation
// benches for the design choices DESIGN.md calls out. The figure benches
// run the same generators as cmd/svbench at a reduced scale so that
// `go test -bench=.` finishes quickly; the reported custom metrics are the
// end-of-window sampling totals of each method (percent of the relation's
// records), i.e. the quantities the paper plots. Full-scale runs for
// EXPERIMENTS.md use cmd/svbench.

import (
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sampleview/internal/btree"
	"sampleview/internal/core"
	"sampleview/internal/diffview"
	"sampleview/internal/figures"
	"sampleview/internal/iosim"
	"sampleview/internal/kary"
	"sampleview/internal/pagefile"
	"sampleview/internal/permfile"
	"sampleview/internal/record"
	"sampleview/internal/workload"
)

func benchConfig() figures.Config {
	return figures.Config{
		N:          150_000,
		Queries:    3,
		Seed:       2006,
		Model:      iosim.DefaultModel(),
		MemPages:   32,
		GridPoints: 50,
		// Raw physical disk model: at benchmark scale the scale-matched
		// geometry saturates every method within the window; the physical
		// model keeps the transient visible. EXPERIMENTS.md uses the
		// scale-matched cmd/svbench runs.
		Physical: true,
	}
}

var (
	wb1Once, wb2Once sync.Once
	wb1, wb2         *figures.Workbench
	wb1Err, wb2Err   error
)

func workbench(b *testing.B, dims int) *figures.Workbench {
	b.Helper()
	if dims == 1 {
		wb1Once.Do(func() { wb1, wb1Err = figures.NewWorkbench(benchConfig(), 1) })
		if wb1Err != nil {
			b.Fatal(wb1Err)
		}
		return wb1
	}
	wb2Once.Do(func() { wb2, wb2Err = figures.NewWorkbench(benchConfig(), 2) })
	if wb2Err != nil {
		b.Fatal(wb2Err)
	}
	return wb2
}

// reportFigure publishes each series' end-of-window value as a benchmark
// metric (percent of the relation's records retrieved).
func reportFigure(b *testing.B, fig *figures.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			continue
		}
		name := ""
		for _, r := range s.Name {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				name += string(r)
			}
		}
		b.ReportMetric(s.Y[len(s.Y)-1], name+"_pct")
	}
}

func benchFig1D(b *testing.B, id string, sel, maxFrac float64) {
	wb := workbench(b, 1)
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig1DOn(wb, id, sel, maxFrac)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig11(b *testing.B) { benchFig1D(b, "11", 0.0025, 0.04) }
func BenchmarkFig12(b *testing.B) { benchFig1D(b, "12", 0.025, 0.04) }
func BenchmarkFig13(b *testing.B) { benchFig1D(b, "13", 0.25, 0.04) }

func BenchmarkFig14(b *testing.B) {
	wb := workbench(b, 1)
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig14On(wb)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func benchFig15(b *testing.B, id string, sel float64) {
	wb := workbench(b, 1)
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig15On(wb, id, sel)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the peak of the max-envelope: the paper's headline is that
	// buffering stays a tiny fraction of the relation.
	peak := 0.0
	for _, y := range fig.Series[2].Y {
		if y > peak {
			peak = y
		}
	}
	b.ReportMetric(peak, "peakBufferedFrac")
}

func BenchmarkFig15a(b *testing.B) { benchFig15(b, "15a", 0.0025) }
func BenchmarkFig15b(b *testing.B) { benchFig15(b, "15b", 0.025) }

func benchFig2D(b *testing.B, id string, sel, maxFrac float64) {
	wb := workbench(b, 2)
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig2DOn(wb, id, sel, maxFrac)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig16(b *testing.B) { benchFig2D(b, "16", 0.0025, 0.05) }
func BenchmarkFig17(b *testing.B) { benchFig2D(b, "17", 0.025, 0.05) }
func BenchmarkFig18(b *testing.B) { benchFig2D(b, "18", 0.25, 0.05) }

// BenchmarkAblationBufferPool sweeps the sampler buffer pool size and
// reports the simulated milliseconds the ranked B+-Tree needs to draw
// 2000 samples from a 25%-selectivity predicate: the baseline's
// performance is largely a function of its cache, one of the sensitivities
// DESIGN.md documents.
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, poolPages := range []int{4, 16, 64, 256} {
		b.Run("pool"+itoa(poolPages), func(b *testing.B) {
			b.ReportAllocs()
			sim := iosim.New(iosim.DefaultModel())
			rel, err := workload.GenerateRelation(sim, 120_000, workload.Uniform, 9)
			if err != nil {
				b.Fatal(err)
			}
			pool := pagefile.NewPool(poolPages)
			tree, err := btree.Build(pagefile.NewMem(sim), rel, pool, 32)
			if err != nil {
				b.Fatal(err)
			}
			qg := workload.NewQueryGen(10)
			rng := rand.New(rand.NewPCG(1, 1))
			var simMS float64
			for i := 0; i < b.N; i++ {
				pool.Reset()
				q := qg.Range1D(0.25)
				s, err := tree.NewSampler(q.Dim(0), rng)
				if err != nil {
					b.Fatal(err)
				}
				t0 := sim.Now()
				for k := 0; k < 2000; k++ {
					if _, err := s.Next(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
				simMS = float64((sim.Now() - t0).Milliseconds())
			}
			b.ReportMetric(simMS, "simMS/2000draws")
		})
	}
}

// BenchmarkAblationLeafLayout reports the space utilization of the two
// leaf layout schemes of Section V-F: the variable-size scheme in use
// versus the rejected fixed-size scheme (every leaf slot sized for the
// largest leaf). The paper estimates <15% utilization for a fixed scheme
// tuned for 99% overflow safety; sizing to the observed max gives the
// same order.
func BenchmarkAblationLeafLayout(b *testing.B) {
	sim := iosim.New(iosim.DefaultModel())
	rel, err := workload.GenerateRelation(sim, 200_000, workload.Uniform, 11)
	if err != nil {
		b.Fatal(err)
	}
	var st core.LeafStats
	for i := 0; i < b.N; i++ {
		tree, err := core.Create(pagefile.NewMem(sim), rel, core.Params{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		st = tree.LeafStats()
	}
	b.ReportMetric(st.VariableUtilization*100, "variable_util_pct")
	b.ReportMetric(st.FixedMaxUtilization*100, "fixedmax_util_pct")
	b.ReportMetric(st.Fixed99Utilization*100, "fixed99_util_pct")
}

// BenchmarkAblationDifferential measures the per-sample cost of querying
// through the differential buffer (Section IX's update strategy) as the
// buffered fraction grows.
func BenchmarkAblationDifferential(b *testing.B) {
	sim := iosim.New(iosim.DefaultModel())
	rel, err := workload.GenerateRelation(sim, 100_000, workload.Uniform, 12)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := core.Create(pagefile.NewMem(sim), rel, core.Params{Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	for _, deltaFrac := range []float64{0, 0.05, 0.20} {
		b.Run("delta"+itoa(int(deltaFrac*100))+"pct", func(b *testing.B) {
			b.ReportAllocs()
			v := diffview.New(tree)
			g := workload.NewGenerator(workload.Uniform, 14)
			for i := 0; i < int(deltaFrac*100_000); i++ {
				v.Append(g.Next())
			}
			rng := rand.New(rand.NewPCG(2, 2))
			q := record.Box1D(0, workload.KeyDomain/4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := v.Query(q, rng)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 1000; k++ {
					if _, err := s.Next(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationArity measures Section III-D's binary-versus-k-ary
// design choice: with the leaf count held constant (2^8 = 4^4 = 16^2 = 256
// leaves), it reports how many leaf retrievals (and how much simulated
// time) pass before the first appended batch can be emitted for a
// ~38%-wide range query. Wider trees must wait for up to k stabs per
// level before sections spanning the query can be appended, so "fast
// first" favours the binary tree.
func BenchmarkAblationArity(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 22))
	recs := make([]record.Record, 120_000)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Int64N(1 << 20), Seq: uint64(i)}
	}
	q := record.Range{Lo: 300_000, Hi: 700_000}
	for _, cfg := range []struct{ k, h int }{{2, 9}, {4, 5}, {16, 3}} {
		b.Run("k"+itoa(cfg.k), func(b *testing.B) {
			var simMS, leaves float64
			for i := 0; i < b.N; i++ {
				sim := iosim.New(iosim.DefaultModel())
				tree, err := kary.Build(pagefile.NewMem(sim), recs, cfg.k, cfg.h, 23)
				if err != nil {
					b.Fatal(err)
				}
				s := tree.Query(q)
				t0 := sim.Now()
				for s.Appends() == 0 && !s.Done() {
					if _, err := s.NextLeaf(); err != nil {
						b.Fatal(err)
					}
				}
				simMS = float64((sim.Now() - t0).Milliseconds())
				leaves = float64(s.LeavesRead())
			}
			b.ReportMetric(simMS, "simMS/firstAppend")
			b.ReportMetric(leaves, "leaves/firstAppend")
		})
	}
}

// BenchmarkAblationShuttle compares the paper's toggling shuttle against
// the weighted-shuttle extension (core.StreamOptions) on a 2.5%-wide
// query: it reports the records emitted after reading 1/16 and 1/2 of
// the leaves. Toggling sends equal stab streams into both sides of every
// spanned split regardless of how much of the query lies below each, so
// batches pile up in the combine buckets; deficit-weighted routing
// completes the deep (high-yield) levels much sooner, at a small cost in
// the very first stabs. The statistical guarantee is unchanged.
func BenchmarkAblationShuttle(b *testing.B) {
	sim := iosim.New(iosim.DefaultModel())
	rel, err := workload.GenerateRelation(sim, 400_000, workload.Uniform, 31)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := core.Create(pagefile.NewMem(sim), rel, core.Params{Seed: 32})
	if err != nil {
		b.Fatal(err)
	}
	qg := workload.NewQueryGen(33)
	q := qg.Range1D(0.025)
	for _, weighted := range []bool{false, true} {
		name := "toggling"
		if weighted {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var early, late float64
			for i := 0; i < b.N; i++ {
				stream, err := tree.QueryWithOptions(q, core.StreamOptions{WeightedShuttle: weighted})
				if err != nil {
					b.Fatal(err)
				}
				for stream.LeavesRead() < tree.NumLeaves()/16 {
					if _, err := stream.NextLeaf(); err != nil {
						b.Fatal(err)
					}
				}
				early = float64(stream.Emitted())
				for stream.LeavesRead() < tree.NumLeaves()/2 {
					if _, err := stream.NextLeaf(); err != nil {
						b.Fatal(err)
					}
				}
				late = float64(stream.Emitted())
			}
			b.ReportMetric(early, "recs@1/16leaves")
			b.ReportMetric(late, "recs@1/2leaves")
		})
	}
}

// BenchmarkStreamParallel drives many concurrent streams over one shared
// view, the contention profile of the svserve layer. Each iteration runs
// one seeded query and draws 1000 samples; every leaf read grabs a scratch
// page from the view file's buffer pool, so this is the benchmark that
// shows the pool's single mutex versus its striped replacement (see
// results/realio-bench.md for the before/after numbers).
func BenchmarkStreamParallel(b *testing.B) {
	recs := genRecords(200_000, 41)
	v, err := CreateFromSlice("", recs, Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	defer v.Close()
	var next atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			seed := next.Add(1)
			qg := workload.NewQueryGen(seed)
			s, err := v.Query(qg.Range1D(0.25))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Sample(1000); err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkBuildParallel measures wall-clock bulk-construction time at
// increasing worker counts over one fixed relation. The built view is
// byte-identical at every setting (TestBuildParallelismByteIdentical), so
// this isolates the construction pipeline's parallel scaling: run formation,
// tag assignment and leaf rendering all fan out across the workers.
func BenchmarkBuildParallel(b *testing.B) {
	const n = 400_000
	counts := []int{1, 2, 4}
	if c := runtime.NumCPU(); c > 4 {
		counts = append(counts, c)
	}
	for _, workers := range counts {
		b.Run("p"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			sim := iosim.New(iosim.DefaultModel())
			rel, err := workload.GenerateRelation(sim, n, workload.Uniform, 51)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Create(pagefile.NewMem(sim), rel, core.Params{
					Seed:        52,
					Parallelism: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFiguresParallel measures wall-clock figure regeneration
// (workbench build plus Figure 11) at increasing worker counts.
func BenchmarkFiguresParallel(b *testing.B) {
	counts := []int{1, 2, 4}
	if c := runtime.NumCPU(); c > 4 {
		counts = append(counts, c)
	}
	for _, workers := range counts {
		b.Run("p"+itoa(workers), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Parallel = workers
			for i := 0; i < b.N; i++ {
				wb, err := figures.NewWorkbench(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := figures.Fig1DOn(wb, "11", 0.0025, 0.04); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstruction measures bulk-construction cost in units of
// relation scans (the paper: building an ACE Tree "requires only two
// external sorts" plus the assignment and layout passes). Reported per
// structure so the sample view's build cost can be compared with its
// conventional competitors.
func BenchmarkConstruction(b *testing.B) {
	const n = 200_000
	scanOf := func(sim *iosim.Sim) float64 {
		recsPerPage := int64(sim.Model().PageSize / 100)
		return float64(sim.ScanCost((n + recsPerPage - 1) / recsPerPage))
	}
	b.Run("acetree", func(b *testing.B) {
		var mult float64
		for i := 0; i < b.N; i++ {
			sim := iosim.New(iosim.DefaultModel())
			rel, err := workload.GenerateRelation(sim, n, workload.Uniform, 51)
			if err != nil {
				b.Fatal(err)
			}
			t0 := sim.Now()
			if _, err := core.Create(pagefile.NewMem(sim), rel, core.Params{Seed: 52}); err != nil {
				b.Fatal(err)
			}
			mult = float64(sim.Now()-t0) / scanOf(sim)
		}
		b.ReportMetric(mult, "scans")
	})
	b.Run("btree", func(b *testing.B) {
		var mult float64
		for i := 0; i < b.N; i++ {
			sim := iosim.New(iosim.DefaultModel())
			rel, err := workload.GenerateRelation(sim, n, workload.Uniform, 51)
			if err != nil {
				b.Fatal(err)
			}
			t0 := sim.Now()
			if _, err := btree.Build(pagefile.NewMem(sim), rel, pagefile.NewPool(64), 64); err != nil {
				b.Fatal(err)
			}
			mult = float64(sim.Now()-t0) / scanOf(sim)
		}
		b.ReportMetric(mult, "scans")
	})
	b.Run("permfile", func(b *testing.B) {
		var mult float64
		for i := 0; i < b.N; i++ {
			sim := iosim.New(iosim.DefaultModel())
			rel, err := workload.GenerateRelation(sim, n, workload.Uniform, 51)
			if err != nil {
				b.Fatal(err)
			}
			t0 := sim.Now()
			if _, err := permfile.Build(pagefile.NewMem(sim), rel, 64, 53); err != nil {
				b.Fatal(err)
			}
			mult = float64(sim.Now()-t0) / scanOf(sim)
		}
		b.ReportMetric(mult, "scans")
	})
}
