package sampleview

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"time"

	"sampleview/internal/core"
	"sampleview/internal/iosim"
	"sampleview/internal/lsm"
	"sampleview/internal/pagefile"
	"sampleview/internal/record"
	"sampleview/internal/stats"
	"sampleview/internal/wal"
)

// ErrStreamClosed is returned by Stream.Next (and everything built on it)
// after Stream.Close has been called.
var ErrStreamClosed = errors.New("sampleview: stream closed")

// Re-exported data types. Record is the fixed 100-byte tuple the view
// stores; Key is the primary indexed attribute and Amount the secondary
// one used by two-dimensional views.
type (
	// Record is one tuple of the view.
	Record = record.Record
	// Range is a closed interval over one key dimension.
	Range = record.Range
	// Box is a (1- or 2-dimensional) range predicate.
	Box = record.Box
	// Estimator consumes an online sample and maintains running aggregate
	// estimates with confidence intervals.
	Estimator = stats.Estimator
	// WriteStats is a snapshot of a view's write-path gauges and counters:
	// memview contents, delta-ladder shape, tombstones pending and
	// maintenance rounds run.
	WriteStats = lsm.WriteStats
)

// Fault-model types, re-exported so callers can configure fault injection
// and type-switch on storage failures without importing internal packages.
type (
	// FaultPlan is a deterministic, seeded schedule of injected storage
	// faults (see Options.Faults and View.InjectFaults).
	FaultPlan = iosim.FaultPlan
	// FaultCounters aggregates observed fault activity.
	FaultCounters = iosim.FaultCounters
	// CorruptPageError reports a page whose checksum verification failed:
	// detected bit rot, never silently wrong records.
	CorruptPageError = pagefile.CorruptPageError
	// DeadPageError reports a page unreadable after the full retry budget.
	DeadPageError = pagefile.DeadPageError
	// TransientIOError reports a read failure that a later retry may clear.
	TransientIOError = pagefile.TransientError
	// DegradedError reports a stream that permanently lost a leaf: the
	// running sample no longer covers the named sections.
	DegradedError = core.DegradedError
	// PageFault locates one corrupt page found by View.Fsck.
	PageFault = core.PageFault
	// BackendKind selects the raw-I/O backend of an OS-backed view file
	// (see Options.Backend).
	BackendKind = pagefile.BackendKind
	// ItemRangeError reports an item region that does not fit its file.
	ItemRangeError = pagefile.ItemRangeError
)

// Raw-I/O backends for Options.Backend.
const (
	// BackendPread serves pages with positional reads: the portable default.
	BackendPread = pagefile.BackendPread
	// BackendMmap maps the view file read-only and serves pages zero-copy.
	BackendMmap = pagefile.BackendMmap
)

// ParseBackendKind maps a flag spelling ("pread", "mmap", "default") to a
// BackendKind for Options.Backend.
func ParseBackendKind(s string) (BackendKind, error) { return pagefile.ParseBackendKind(s) }

// FaultProfile returns the named fault profile ("none", "flaky-disk",
// "slow-disk", "flaky-deep", "bitrot", "bad-sector", "hell") with the given
// seed.
func FaultProfile(name string, seed uint64) (FaultPlan, error) {
	return iosim.ProfilePlan(name, seed)
}

// FaultProfiles lists the named fault profiles, mildest first.
func FaultProfiles() []string { return iosim.Profiles() }

// Crash-injection types, re-exported for the crash-drill harness: a
// CrashPlan schedules one deterministic simulated power cut at a named
// write-path crash point (see Options.Crash and View.InjectCrash).
type (
	// CrashPlan schedules one deterministic power cut.
	CrashPlan = iosim.CrashPlan
	// CrashPoint names an instrumented write-path site.
	CrashPoint = iosim.CrashPoint
)

// The named crash points, in write-path order.
const (
	CrashPostWALAppend     = iosim.CrashPostWALAppend
	CrashMidPageWrite      = iosim.CrashMidPageWrite
	CrashPreManifestRename = iosim.CrashPreManifestRename
	CrashMidCompaction     = iosim.CrashMidCompaction
)

// CrashPoints returns every crash point, in write-path order.
func CrashPoints() []CrashPoint { return iosim.CrashPoints() }

// ParseCrashPoint resolves a crash-point name from a flag.
func ParseCrashPoint(s string) (CrashPoint, error) { return iosim.ParseCrashPoint(s) }

// IsCrash reports whether err is (or wraps) a simulated power cut. After a
// cut, every write-path operation on the view fails with the same error;
// reopening the view runs recovery over whatever reached the disk.
func IsCrash(err error) bool { return iosim.IsCrash(err) }

// IsTransient reports whether err is (or wraps) a transient storage
// failure: retrying the operation that returned it may succeed, and for
// streams the retry continues exactly where the fault struck (no records
// are skipped or repeated).
func IsTransient(err error) bool { return pagefile.IsTransient(err) }

// IsDegraded reports whether err is (or wraps) a permanent-but-survivable
// storage loss: a DegradedError (a base leaf lost to a dead or corrupt
// page) or an lsm.WritePathLostError (a delta region lost the same way).
// Either way the stream that returned it keeps serving what survived.
func IsDegraded(err error) bool {
	var de *DegradedError
	return errors.As(err, &de) || lsm.IsWritePathLost(err)
}

// Box1D returns a one-dimensional predicate over [lo, hi] on Key.
func Box1D(lo, hi int64) Box { return record.Box1D(lo, hi) }

// Box2D returns a two-dimensional predicate over Key and Amount.
func Box2D(keyLo, keyHi, amtLo, amtHi int64) Box {
	return record.Box2D(keyLo, keyHi, amtLo, amtHi)
}

// FullBox returns the predicate matching everything in ndims dimensions.
func FullBox(ndims int) Box { return record.FullBox(ndims) }

// Options configures view creation.
type Options struct {
	// Dims is the number of indexed dimensions, 1 (Key only, the default)
	// or 2 (Key and Amount).
	Dims int
	// Height overrides the ACE Tree height; 0 sizes leaves to one disk
	// page, the paper's rule.
	Height int
	// MemPages is the construction sort's page budget (default 64).
	MemPages int
	// Seed drives the randomized construction. Views built with different
	// seeds over the same data give independent samples.
	Seed uint64
	// BuildParallelism is the number of worker goroutines the bulk
	// construction pipeline may use for run formation, tagging and leaf
	// writing (0 or 1 = sequential). The stored view is byte-identical at
	// every setting for a given seed.
	BuildParallelism int
	// DiskModel overrides the simulated disk cost model used for I/O
	// accounting. Zero value selects iosim.DefaultModel.
	DiskModel iosim.Model
	// Faults installs a deterministic storage-fault schedule on the view's
	// simulated disk. Construction and metadata loading always run
	// fault-free; the plan governs the query and append I/O that follows.
	// The zero value injects nothing; View.InjectFaults replaces the plan at
	// runtime.
	Faults FaultPlan
	// Backend selects the raw-I/O backend for OS-backed view files opened
	// with Open: BackendPread (the portable default) or BackendMmap (the
	// zero-copy fast path). It changes only wall-clock speed — the simulated
	// accounting and every sampled byte are identical across backends.
	// Ignored by Create and by in-memory views.
	Backend BackendKind
	// PrefetchWorkers > 0 attaches an async leaf prefetcher to files opened
	// with Open: while a stream decodes one leaf, the next leaf of its
	// deterministic schedule is warmed into memory on wall-clock time, with
	// no simulated charge. 0 disables prefetching.
	PrefetchWorkers int
	// WAL enables the crash-consistent write path for OS-backed views:
	// every Insert/Delete is appended to a checksummed write-ahead log
	// beside the view file before it reaches the memview, View.Commit
	// group-commits the log (the ack barrier), Open replays it, and Flush
	// truncates the segments a durable level-0 write made redundant.
	// Ignored for in-memory views.
	WAL bool
	// WALSyncEvery caps how many logged operations one group-commit cohort
	// may cover; 1 syncs every write (the durability baseline), 0 leaves
	// the cohort unbounded. Only meaningful with WAL.
	WALSyncEvery int
	// WALGroupWindow is how long a commit leader waits (wall-clock) for
	// more writers to join its cohort before issuing the one fsync that
	// acks the batch. 0 syncs immediately. Only meaningful with WAL.
	WALGroupWindow time.Duration
	// Crash installs a deterministic simulated power-cut schedule on the
	// view's disk (see CrashPlan). The zero value injects nothing;
	// View.InjectCrash replaces the schedule at runtime.
	Crash CrashPlan
}

func (o Options) model() iosim.Model {
	if o.DiskModel.PageSize == 0 {
		return iosim.DefaultModel()
	}
	return o.DiskModel
}

func (o Options) params() core.Params {
	return core.Params{
		Dims:        o.Dims,
		Height:      o.Height,
		MemPages:    o.MemPages,
		Seed:        o.Seed,
		Parallelism: o.BuildParallelism,
	}
}

// Source supplies records to Create one at a time; it returns false when
// exhausted.
type Source func() (Record, bool)

// SliceSource adapts a slice to a Source.
func SliceSource(recs []Record) Source {
	i := 0
	return func() (Record, bool) {
		if i >= len(recs) {
			return Record{}, false
		}
		r := recs[i]
		i++
		return r, true
	}
}

// View is an open materialized sample view. A View and every Stream
// created from it may be used from multiple goroutines. Streams do not
// contend on a view-level lock: each one carries its own mutex and
// charges its page reads to a private clock forked from the view's
// simulated disk (iosim.Sim.Fork), so concurrent streams proceed
// independently while the view's aggregate Stats stay complete. Only the
// view's mutable bookkeeping - the differential buffer of appended
// records and the draw rng - serializes on the view mutex.
type View struct {
	mu   sync.Mutex
	sim  *iosim.Sim
	file *pagefile.File
	tree *core.Tree
	// live is the write path: memview ingest buffer plus leveled delta
	// files beside the view file. It has its own locking; the view mutex
	// only serializes the draw rng and rebuilds.
	live *lsm.View
	// walLog is the write-ahead log (nil unless Options.WAL); the view owns
	// its lifecycle, lsm.View uses it.
	walLog *wal.Log
	rng    *rand.Rand // guarded by mu
	path   string
}

// Create builds a sample view over the records produced by src and stores
// it in a file at path. An empty path keeps the view in memory.
func Create(path string, src Source, opts Options) (*View, error) {
	sim := iosim.New(opts.model())
	rel := pagefile.NewItemFile(pagefile.NewMem(sim), record.Size)
	w := rel.NewWriter()
	buf := make([]byte, record.Size)
	for {
		rec, ok := src()
		if !ok {
			break
		}
		rec.Marshal(buf)
		if err := w.Write(buf); err != nil {
			return nil, fmt.Errorf("sampleview: staging records: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}

	var f *pagefile.File
	var err error
	if path == "" {
		f = pagefile.NewMem(sim)
	} else if f, err = pagefile.Create(sim, path); err != nil {
		return nil, err
	}
	tree, err := core.Create(f, rel, opts.params())
	if err != nil {
		if path != "" {
			f.Close()
		}
		return nil, err
	}
	store, err := lsm.CreateStore(sim, path)
	if err != nil {
		if path != "" {
			f.Close()
		}
		return nil, err
	}
	v := newView(sim, f, tree, store, path, opts.Seed)
	if err := v.enableWAL(opts, true); err != nil {
		v.Close()
		return nil, err
	}
	sim.SetFaultPlan(opts.Faults)
	sim.SetCrashPlan(opts.Crash)
	return v, nil
}

// CreateFromSlice builds a sample view over the given records.
func CreateFromSlice(path string, recs []Record, opts Options) (*View, error) {
	return Create(path, SliceSource(recs), opts)
}

// Open opens a view previously stored by Create.
func Open(path string, opts Options) (*View, error) {
	sim := iosim.New(opts.model())
	f, err := pagefile.OpenWith(sim, path, pagefile.OpenOptions{
		Backend:         opts.Backend,
		PrefetchWorkers: opts.PrefetchWorkers,
	})
	if err != nil {
		return nil, err
	}
	tree, err := core.Open(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Reopen the delta ladder persisted beside the view file, so ingest
	// flushed by a previous process stays visible.
	store, err := lsm.OpenStore(sim, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	v := newView(sim, f, tree, store, path, opts.Seed)
	// Recovery: replay the write-ahead log into the memview, skipping
	// operations already folded into durable levels, before any fault or
	// crash schedule arms.
	if err := v.enableWAL(opts, false); err != nil {
		v.Close()
		return nil, err
	}
	sim.SetFaultPlan(opts.Faults)
	sim.SetCrashPlan(opts.Crash)
	return v, nil
}

func newView(sim *iosim.Sim, f *pagefile.File, tree *core.Tree, store *lsm.Store, path string, seed uint64) *View {
	return &View{
		sim:  sim,
		file: f,
		tree: tree,
		live: lsm.NewView(tree, store),
		rng:  rand.New(rand.NewPCG(seed^0x5eedf00d, seed+1)),
		path: path,
	}
}

// enableWAL opens (create: after clearing stale segments) the write-ahead
// log beside the view file, replays recovered operations into the memview,
// and attaches the log to the write path. A no-op for in-memory views or
// when Options.WAL is off.
func (v *View) enableWAL(opts Options, create bool) error {
	if !opts.WAL || v.path == "" {
		return nil
	}
	if create {
		if err := wal.RemoveAll(v.path); err != nil {
			return err
		}
	}
	l, ops, err := wal.Open(v.path, wal.Options{
		Sim:         v.sim,
		SyncEvery:   opts.WALSyncEvery,
		GroupWindow: opts.WALGroupWindow,
	})
	if err != nil {
		return err
	}
	if _, err := v.live.AttachWAL(l, ops); err != nil {
		l.Close()
		return err
	}
	v.walLog = l
	return nil
}

// Commit blocks until every write accepted so far is durable in the
// write-ahead log, joining the in-progress group-commit cohort when one
// exists (one fsync acks every writer parked on it). Callers that ack
// writes to others — the serving layer — call this before acking. Without a
// WAL it returns immediately: durability is then only flush-deep.
func (v *View) Commit() error { return v.live.Commit() }

// Close releases the view's backing file, its delta-level files and its
// write-ahead log (flushing any buffered log frames first, unless a
// simulated power cut already struck).
func (v *View) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	serr := v.live.Store().Close()
	if v.walLog != nil {
		if werr := v.walLog.Close(); werr != nil && serr == nil && !iosim.IsCrash(werr) {
			serr = werr
		}
	}
	if err := v.file.Close(); err != nil {
		return err
	}
	return serr
}

// Count returns the number of records in the view, including ingested ones
// not yet folded into the tree.
func (v *View) Count() int64 { return v.live.Count() }

// Dims returns the number of indexed dimensions.
func (v *View) Dims() int { return v.tree.Dims() }

// Height returns the ACE Tree height (sections per leaf).
func (v *View) Height() int { return v.tree.Height() }

// PendingAppends returns how many ingested records await a fold into the
// tree: the in-memory buffer plus every delta level.
func (v *View) PendingAppends() int { return v.live.DeltaSize() }

// Append adds a record to the view's ingest buffer. The record
// participates in all subsequent queries; call Compact periodically to
// fold the write path into the tree. It is Insert without the error (an
// insert can only fail on a sealed buffer, which Insert retries past).
func (v *View) Append(rec Record) { v.live.Insert(rec) }

// Insert adds a record to the view through the in-memory ingest buffer.
// Seqs must be unique over the view's lifetime, and a deleted Seq must
// never be reinserted.
func (v *View) Insert(rec Record) error { return v.live.Insert(rec) }

// Delete removes the record with rec's Seq from the view. A record still
// in the ingest buffer annihilates immediately; anything older becomes a
// tombstone that queries honor at once and maintenance folds away.
func (v *View) Delete(rec Record) error { return v.live.Delete(rec) }

// Flush seals the ingest buffer and writes it out as a new level-0 delta
// file beside the view file (in memory for in-memory views). Ingest is
// blocked only for the buffer swap; queries see every record throughout.
func (v *View) Flush() error { return v.live.Flush() }

// CompactDeltas runs one round of size-tiered delta compaction, merging an
// adjacent level pair when one is due (always, with force, while two
// levels exist). Open streams are not blocked: they keep reading the
// superseded files. It reports whether a merge ran.
func (v *View) CompactDeltas(force bool) (bool, error) { return v.live.CompactOnce(force) }

// DeltaLevels returns the current depth of the on-disk delta ladder.
func (v *View) DeltaLevels() int { return v.live.Store().Levels() }

// WriteStats returns the view's write-path gauges and counters.
func (v *View) WriteStats() WriteStats { return v.live.WriteStats() }

// Compact rebuilds the view over everything it holds — tree records minus
// tombstoned ones, plus every delta level and the ingest buffer — writing
// the result to path (empty = in memory), and returns the new view. The
// receiver remains open and readable; the fold works from a snapshot, so
// records ingested while it runs stay in the receiver only.
func (v *View) Compact(path string, opts Options) (*View, error) {
	if opts.Dims == 0 {
		opts.Dims = v.Dims()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	sim := iosim.New(opts.model())
	var f *pagefile.File
	var err error
	if path == "" {
		f = pagefile.NewMem(sim)
	} else if f, err = pagefile.Create(sim, path); err != nil {
		return nil, err
	}
	tree, err := v.live.Fold(f, opts.params())
	if err != nil {
		if path != "" {
			f.Close()
		}
		return nil, err
	}
	store, err := lsm.CreateStore(sim, path)
	if err != nil {
		if path != "" {
			f.Close()
		}
		return nil, err
	}
	nv := newView(sim, f, tree, store, path, opts.Seed)
	// The fold is fully contained in the new base tree, so the compacted
	// view starts from an empty log (stale segments at path are cleared).
	if err := nv.enableWAL(opts, true); err != nil {
		//lint:ignore lockorder nv is the freshly built view, not the receiver; its mutex is distinct from the v.mu held here
		nv.Close()
		return nil, err
	}
	sim.SetFaultPlan(opts.Faults)
	sim.SetCrashPlan(opts.Crash)
	return nv, nil
}

// InjectFaults installs (or, with a zero plan, clears) a deterministic
// storage-fault schedule on the view's simulated disk. It takes effect for
// subsequent page reads, including those of streams already open; the
// chaos harness uses it to escalate profiles against a live view.
func (v *View) InjectFaults(p FaultPlan) { v.sim.SetFaultPlan(p) }

// FaultPlan returns the active fault schedule (zero if none).
func (v *View) FaultPlan() FaultPlan { return v.sim.FaultPlan() }

// InjectCrash installs (or, with a zero plan, clears) a deterministic
// simulated power-cut schedule on the view's disk. Once the scheduled
// crash point fires, every write-path operation fails with the crash error
// until the view is reopened; the crash drill harness uses it to kill the
// write path at every instrumented site.
func (v *View) InjectCrash(p CrashPlan) { v.sim.SetCrashPlan(p) }

// Crashed reports whether the simulated power cut has fired.
func (v *View) Crashed() bool { return v.sim.Crashed() }

// Fsck verifies the stored checksum of every page of the view file and
// reports each corrupt page with the tree region — and for leaf pages, the
// leaf and sections — it damages. Legacy (pre-checksum) files report
// nothing. The scan costs one sequential pass of simulated I/O.
func (v *View) Fsck() ([]PageFault, error) { return v.tree.FsckPages() }

// EstimateCount estimates the number of records matching q from the
// view's internal counts (exact for boundary-aligned predicates).
func (v *View) EstimateCount(q Box) (float64, error) {
	return v.live.EstimateCount(q)
}

// NewEstimator returns an online-aggregation estimator whose population
// size is preset from EstimateCount(q), so Sum and Count estimates work
// out of the box.
func (v *View) NewEstimator(q Box) (*Estimator, error) {
	pop, err := v.EstimateCount(q)
	if err != nil {
		return nil, err
	}
	e := stats.NewEstimator()
	e.SetPopulation(int64(pop + 0.5))
	return e, nil
}

// Stream is an online random sample: every prefix of the records it has
// returned is a uniform random sample, without replacement, of all records
// matching the predicate. It ends with io.EOF once the full matching set
// has been returned.
//
// Each Stream owns its state: a private lock serializing its draws and a
// private clock accounting its I/O, so any number of streams over one
// view can be driven concurrently, each observing the cost it would incur
// running alone on the view's disk.
type Stream struct {
	mu    sync.Mutex   // serializes draws on this stream
	clock *iosim.Clock // the stream's private I/O clock
	// core serves streams over views with an empty write path; live serves
	// the rest, merging the base with the memview and delta levels. Exactly
	// one is set until Close clears both.
	core   *core.Stream // guarded by mu
	live   *lsm.Stream  // guarded by mu
	closed bool         // guarded by mu
	// write snapshots the view's write-path stats at open, so Stats can
	// report the delta depth this stream reads through.
	write WriteStats
	// final* freeze the sampler-level fault accounting when Close drops the
	// core stream, so Stats stays fully valid after Close.
	finalRetries int64 // guarded by mu
	finalDegLeaf int64 // guarded by mu
	finalDegSec  int64 // guarded by mu
}

// Query starts an online sample stream for predicate q. Records ingested
// after the stream was created do not join it; start a new stream to see
// them.
func (v *View) Query(q Box) (*Stream, error) {
	ck := v.sim.Fork()
	if v.live.Empty() {
		cs, err := v.tree.WithClock(ck).Query(q)
		if err != nil {
			return nil, err
		}
		return &Stream{clock: ck, core: cs}, nil
	}
	v.mu.Lock()
	rng := rand.New(rand.NewPCG(v.rng.Uint64(), v.rng.Uint64()))
	v.mu.Unlock()
	ls, err := v.live.QueryClocked(ck, q, rng)
	if err != nil {
		return nil, err
	}
	return &Stream{clock: ck, live: ls, write: v.live.WriteStats()}, nil
}

// QuerySeeded is Query with an explicit stream seed: the randomness that
// merges the write path into the stream (batch shuffles, hypergeometric
// interleave draws) is derived from seed alone instead of the view's shared
// rng. Two views holding byte-identical storage state produce byte-identical
// record sequences from QuerySeeded with the same seed and query — the
// property the fleet tier's replica migration relies on: a stream is fully
// described by (view, query, seed, position), so it can resume on another
// replica with no visible gap. Views with an empty write path are already
// deterministic (the shuttle draws nothing at query time); the seed is
// simply recorded by convention.
func (v *View) QuerySeeded(q Box, seed uint64) (*Stream, error) {
	ck := v.sim.Fork()
	if v.live.Empty() {
		cs, err := v.tree.WithClock(ck).Query(q)
		if err != nil {
			return nil, err
		}
		return &Stream{clock: ck, core: cs}, nil
	}
	rng := rand.New(rand.NewPCG(seed^0x51ee0c0de, seed*0x9e3779b97f4a7c15+1))
	ls, err := v.live.QueryClocked(ck, q, rng)
	if err != nil {
		return nil, err
	}
	return &Stream{clock: ck, live: ls, write: v.live.WriteStats()}, nil
}

// Next returns the next sample record, io.EOF when the predicate is
// exhausted, or ErrStreamClosed after Close.
func (s *Stream) Next() (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Record{}, ErrStreamClosed
	}
	if s.core != nil {
		return s.core.Next()
	}
	return s.live.Next()
}

// Close releases the stream's buffered state. It is idempotent and safe to
// call concurrently with Next, Sample, Buffered and Stats from other
// goroutines: a draw racing with Close either completes normally or
// observes ErrStreamClosed, never a torn state. Stats remains valid after
// Close (the stream's clock is retained; only the sampling state is
// dropped).
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.core != nil {
		s.finalRetries = s.core.TransientRetries()
		s.finalDegLeaf = s.core.DegradedLeaves()
		s.finalDegSec = s.core.DegradedSections()
	}
	if s.live != nil {
		s.finalRetries = s.live.TransientRetries()
		s.finalDegLeaf = s.live.DegradedLeaves()
		s.finalDegSec = s.live.DegradedSections()
	}
	s.core, s.live = nil, nil
	return nil
}

// Sample collects up to n records from the stream (fewer if the predicate
// exhausts first).
func (s *Stream) Sample(n int) ([]Record, error) {
	capHint := n
	if capHint > 4096 {
		capHint = 4096 // the predicate may exhaust long before n
	}
	out := make([]Record, 0, capHint)
	for len(out) < n {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Buffered returns the number of records parked in the base stream's
// combine buckets.
func (s *Stream) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.core != nil {
		return s.core.Buffered()
	}
	if s.live != nil {
		return s.live.Buffered()
	}
	return 0
}

// IOStats summarizes the I/O activity, fault activity and simulated time of
// the view's disk (for View.Stats) or of one stream (for Stream.Stats).
type IOStats struct {
	Counters iosim.Counters
	// Faults counts storage-layer fault events: injected transient
	// failures, latency spikes, checksum rereads, corrupt pages and dead
	// pages observed by this disk or stream clock.
	Faults FaultCounters
	// Retries counts sampler-level retries: stabs that surfaced a transient
	// error to the caller and were re-driven over the same leaf. Zero in
	// View.Stats (it is a per-stream quantity).
	Retries int64
	// DegradedLeaves and DegradedSections count the leaves (and their
	// query-overlapping sections) this stream permanently lost to hard
	// storage failures. Zero in View.Stats.
	DegradedLeaves   int64
	DegradedSections int64
	// Write holds the write-path gauges and counters: the view's current
	// state in View.Stats, the state at stream open in Stream.Stats.
	Write   WriteStats
	SimTime string
}

// Stats returns a snapshot of the view's simulated I/O counters,
// aggregated over every stream (counters are atomic; no lock is taken).
func (v *View) Stats() IOStats {
	return IOStats{
		Counters: v.sim.Counters(),
		Faults:   v.sim.FaultCounters(),
		Write:    v.live.WriteStats(),
		SimTime:  v.sim.Now().String(),
	}
}

// SimNow returns the view's current simulated disk time: the total disk-busy
// time of every access charged so far, directly or through any stream. It
// advances only when I/O is simulated, never with the wall clock, which
// makes it a deterministic basis for idle accounting (the serving layer's
// reaper keys off it).
func (v *View) SimNow() time.Duration { return v.sim.Now() }

// SimNow returns the stream's elapsed simulated I/O time as a duration (the
// same quantity Stats reports as a string).
func (s *Stream) SimNow() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock.Now()
}

// Stats returns the stream's own I/O and fault counters and elapsed
// simulated time: the cost this stream would incur running alone on the
// view's disk, plus how many faults it absorbed and what it lost.
func (s *Stream) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := IOStats{
		Counters:         s.clock.Counters(),
		Faults:           s.clock.FaultCounters(),
		Retries:          s.finalRetries,
		DegradedLeaves:   s.finalDegLeaf,
		DegradedSections: s.finalDegSec,
		Write:            s.write,
		SimTime:          s.clock.Now().String(),
	}
	if s.core != nil {
		st.Retries = s.core.TransientRetries()
		st.DegradedLeaves = s.core.DegradedLeaves()
		st.DegradedSections = s.core.DegradedSections()
	}
	if s.live != nil {
		st.Retries = s.live.TransientRetries()
		st.DegradedLeaves = s.live.DegradedLeaves()
		st.DegradedSections = s.live.DegradedSections()
	}
	return st
}
