package sampleview

// Benchmarks for the live write path: raw ingest throughput through the
// in-memory buffer, flush-inclusive sustained ingest, and the query-side
// cost of delta depth — time to the first 1000 online samples as the
// on-disk ladder deepens. results/ingest-bench.md holds a checked-in run
// with the analysis.

import (
	"io"
	"math/rand/v2"
	"testing"
	"time"

	"sampleview/internal/record"
	"sampleview/internal/workload"
)

const ingestBenchSeqBase = 1 << 40

func ingestBenchView(b *testing.B, n int) *View {
	b.Helper()
	recs := genUniform(n, 2006)
	v, err := CreateFromSlice("", recs, Options{Seed: 2006})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { v.Close() })
	return v
}

func genUniform(n int, seed uint64) []record.Record {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			Key:    rng.Int64N(workload.KeyDomain),
			Amount: rng.Int64N(1000),
			Seq:    uint64(i),
		}
	}
	return recs
}

// BenchmarkIngestAppend measures pure memview ingest: every op is one
// Insert into the in-memory buffer, never flushed.
func BenchmarkIngestAppend(b *testing.B) {
	v := ingestBenchView(b, 10_000)
	rng := rand.New(rand.NewPCG(7, 11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := record.Record{
			Key:    rng.Int64N(workload.KeyDomain),
			Amount: rng.Int64N(1000),
			Seq:    ingestBenchSeqBase + uint64(i),
		}
		if err := v.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestSustained measures the sustained write path: inserts with
// a flush every 4096 records and size-tiered compaction whenever the
// ladder makes a merge due, i.e. the full cost a long-lived writer pays.
func BenchmarkIngestSustained(b *testing.B) {
	v := ingestBenchView(b, 10_000)
	rng := rand.New(rand.NewPCG(7, 11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := record.Record{
			Key:    rng.Int64N(workload.KeyDomain),
			Amount: rng.Int64N(1000),
			Seq:    ingestBenchSeqBase + uint64(i),
		}
		if err := v.Insert(rec); err != nil {
			b.Fatal(err)
		}
		if (i+1)%4096 == 0 {
			if err := v.Flush(); err != nil {
				b.Fatal(err)
			}
			if _, err := v.CompactDeltas(false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(v.DeltaLevels()), "levels")
}

// BenchmarkQueryAtDeltaDepth measures time to the first 1000 online
// samples of a 2.5%-selectivity range query as the delta ladder deepens:
// the same 100k-record base with 0, 1, 2, 4 and 8 on-disk levels of 4096
// ingested records each (plus tombstones for 5% of them). Reported
// metrics: wall ns/op for the 1000 draws including stream open, the
// stream's simulated I/O time, and the realized ladder depth.
func BenchmarkQueryAtDeltaDepth(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		depth   int
		compact bool
	}{
		{"depth0", 0, false},
		{"depth1", 1, false},
		{"depth2", 2, false},
		{"depth4", 4, false},
		{"depth8", 8, false},
		{"depth8-compacted", 8, true},
	} {
		depth := cfg.depth
		b.Run(cfg.name, func(b *testing.B) {
			v := ingestBenchView(b, 100_000)
			rng := rand.New(rand.NewPCG(uint64(depth)*97+1, 5))
			seq := uint64(ingestBenchSeqBase)
			for lvl := 0; lvl < depth; lvl++ {
				batch := make([]record.Record, 4096)
				for i := range batch {
					batch[i] = record.Record{
						Key:    rng.Int64N(workload.KeyDomain),
						Amount: rng.Int64N(1000),
						Seq:    seq,
					}
					seq++
					if err := v.Insert(batch[i]); err != nil {
						b.Fatal(err)
					}
				}
				// Tombstone 5% of the level before flushing the next one, so
				// the probe side of the ladder is exercised too.
				for i := 0; i < len(batch)/20; i++ {
					if err := v.Delete(batch[i]); err != nil {
						b.Fatal(err)
					}
				}
				if err := v.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			if cfg.compact {
				// Size-tiered merging folds the ladder back down; the
				// compacted view answers the same queries as depth8.
				for v.DeltaLevels() > 1 {
					if ran, err := v.CompactDeltas(true); err != nil {
						b.Fatal(err)
					} else if !ran {
						break
					}
				}
			}
			q := workload.NewQueryGen(99).Range1D(0.025)
			var simTotal time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := v.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				for drawn := 0; drawn < 1000; drawn++ {
					if _, err := s.Next(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
				simTotal += s.SimNow()
				s.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(simTotal.Microseconds())/float64(b.N), "sim_us/op")
			b.ReportMetric(float64(v.DeltaLevels()), "levels")
		})
	}
}
