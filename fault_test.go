package sampleview

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sampleview/internal/iosim"
)

// smallPages shrinks the simulated disk's pages so modest test relations
// span enough of them for per-page fault rates to bite.
func smallPages() iosim.Model {
	m := iosim.DefaultModel()
	m.PageSize = 2048
	m.RandomRead = time.Millisecond
	m.SequentialRead = 100 * time.Microsecond
	return m
}

// drainFaulty drives a stream to completion the way a resilient client
// would: transient errors are retried (the stream resumes at the same
// stab), degraded errors are recorded, anything else fails the test.
func drainFaulty(t *testing.T, s *Stream) (recs []Record, degraded int) {
	t.Helper()
	retries := 0
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return recs, degraded
		}
		if err != nil {
			if IsDegraded(err) {
				degraded++
				continue
			}
			if IsTransient(err) {
				if retries++; retries > 10000 {
					t.Fatal("stream stuck in transient retries")
				}
				continue
			}
			t.Fatalf("stream error of unexpected type: %v", err)
		}
		recs = append(recs, rec)
	}
}

// TestFlakyDiskInvisibleToCallers is the headline robustness criterion for
// the mild profile: under flaky-disk, every fault is absorbed inside the
// storage layer's retry budget, so callers see the exact record sequence a
// fault-free disk produces and zero errors of any kind.
func TestFlakyDiskInvisibleToCallers(t *testing.T) {
	recs := genRecords(4000, 7)
	q := Box1D(1<<18, 3<<19)

	clean, err := CreateFromSlice("", recs, Options{Seed: 9, DiskModel: smallPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	plan, err := FaultProfile("flaky-disk", 42)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := CreateFromSlice("", recs, Options{Seed: 9, DiskModel: smallPages(), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()

	cs, err := clean.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := drainFaulty(t, cs)

	fs, err := flaky.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	for { // plain drain: no retry loop — errors here fail the criterion
		rec, err := fs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("flaky-disk leaked an error to the caller: %v", err)
		}
		got = append(got, rec)
	}
	if len(got) != len(want) {
		t.Fatalf("flaky run emitted %d records, fault-free %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs under flaky-disk", i)
		}
	}
	st := fs.Stats()
	if st.Faults.Transient == 0 {
		t.Fatal("profile injected no transient faults; test proves nothing")
	}
	if st.Retries != 0 || st.DegradedLeaves != 0 {
		t.Fatalf("flaky-disk must be absorbed below the sampler: %+v", st)
	}
}

// TestFaultStatsDeterministicAcrossParallelism verifies the determinism
// contract: with a fixed FaultPlan seed, each stream's fault schedule is a
// pure function of its own access sequence, so running K identical queries
// concurrently yields the same per-stream records and Stats counters as
// running them one at a time.
func TestFaultStatsDeterministicAcrossParallelism(t *testing.T) {
	recs := genRecords(4000, 3)
	plan, err := FaultProfile("flaky-deep", 77)
	if err != nil {
		t.Fatal(err)
	}
	v, err := CreateFromSlice("", recs, Options{Seed: 5, DiskModel: smallPages(), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	q := Box1D(0, 1<<19)

	type run struct {
		recs []Record
		st   IOStats
	}
	const k = 6
	one := func() run {
		s, err := v.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rs, _ := drainFaulty(t, s)
		return run{rs, s.Stats()}
	}

	seq := make([]run, k)
	for i := range seq {
		seq[i] = one()
	}
	par := make([]run, k)
	var wg sync.WaitGroup
	for i := range par {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			par[i] = one()
		}(i)
	}
	wg.Wait()

	if seq[0].st.Retries == 0 {
		t.Fatal("flaky-deep should force sampler-level retries")
	}
	for i := 1; i < k; i++ {
		if seq[i].st != seq[0].st {
			t.Fatalf("sequential runs disagree:\n%+v\n%+v", seq[i].st, seq[0].st)
		}
	}
	for i := range par {
		if par[i].st != seq[0].st {
			t.Fatalf("concurrent run %d diverged from sequential baseline:\n%+v\n%+v",
				i, par[i].st, seq[0].st)
		}
		if len(par[i].recs) != len(seq[0].recs) {
			t.Fatalf("concurrent run %d emitted %d records, want %d",
				i, len(par[i].recs), len(seq[0].recs))
		}
		for j := range par[i].recs {
			if par[i].recs[j] != seq[0].recs[j] {
				t.Fatalf("concurrent run %d record %d differs", i, j)
			}
		}
	}
}

// TestBitrotNeverSilent is the headline criterion for the corruption
// profiles: every record a stream emits under bitrot is byte-identical to a
// record of the source relation. Corruption may cost coverage (degraded
// leaves) but never truth.
func TestBitrotNeverSilent(t *testing.T) {
	recs := genRecords(6000, 11)
	byseq := make(map[uint64]Record, len(recs))
	for _, r := range recs {
		byseq[r.Seq] = r
	}
	plan, err := FaultProfile("bitrot", 1234)
	if err != nil {
		t.Fatal(err)
	}
	v, err := CreateFromSlice("", recs, Options{Seed: 2, DiskModel: smallPages(), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	s, err := v.Query(FullBox(1))
	if err != nil {
		t.Fatal(err)
	}
	got, degraded := drainFaulty(t, s)
	for i := range got {
		want, ok := byseq[got[i].Seq]
		if !ok || got[i] != want {
			t.Fatalf("stream emitted a record that is not in the source relation: %+v", got[i])
		}
	}
	st := s.Stats()
	if st.Faults.CorruptPages == 0 {
		t.Skip("bitrot profile hit no queried pages at this seed; raise rate")
	}
	if int64(degraded) != st.DegradedLeaves {
		t.Fatalf("saw %d degraded errors, stats say %d leaves", degraded, st.DegradedLeaves)
	}
	if len(got)+degraded == 0 {
		t.Fatal("stream produced nothing")
	}
}

// TestInjectFaultsAndViewStats covers runtime plan swaps: InjectFaults
// replaces the schedule on a live view, FaultPlan reads it back, and the
// view-level Stats aggregate the fault counters of every stream.
func TestInjectFaultsAndViewStats(t *testing.T) {
	recs := genRecords(3000, 19)
	v, err := CreateFromSlice("", recs, Options{Seed: 1, DiskModel: smallPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if p := v.FaultPlan(); p.Enabled() {
		t.Fatalf("fresh view has a fault plan: %+v", p)
	}

	plan, err := FaultProfile("flaky-disk", 8)
	if err != nil {
		t.Fatal(err)
	}
	v.InjectFaults(plan)
	if got := v.FaultPlan(); got != plan {
		t.Fatalf("FaultPlan = %+v, want %+v", got, plan)
	}
	s, err := v.Query(FullBox(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(len(recs)); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Faults.Transient == 0 {
		t.Fatal("view stats did not aggregate the stream's fault counters")
	}

	v.InjectFaults(FaultPlan{})
	if v.FaultPlan().Enabled() {
		t.Fatal("InjectFaults(zero) did not clear the plan")
	}
}

// TestFsckReportsDiskDamage damages an on-disk view out-of-band (a single
// flipped byte, as real bit rot would) and verifies Fsck pinpoints the
// page while a healthy view reports nothing.
func TestFsckReportsDiskDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "view.sv")
	recs := genRecords(5000, 23)
	v, err := CreateFromSlice(path, recs, Options{Seed: 3, DiskModel: smallPages()})
	if err != nil {
		t.Fatal(err)
	}
	faults, err := v.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 0 {
		t.Fatalf("healthy view reported %d corrupt pages", len(faults))
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the middle of the file, past the superblock.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	v2, err := Open(path, Options{DiskModel: smallPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	faults, err = v2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 {
		t.Fatalf("fsck found %d corrupt pages, want 1: %v", len(faults), faults)
	}
	if faults[0].Region == "" {
		t.Fatalf("fault not located: %+v", faults[0])
	}
}
