module sampleview

go 1.22
