package sampleview

import (
	"math"
	"testing"
)

func TestRunQueryEndToEnd(t *testing.T) {
	recs := genRecords(30_000, 31)
	v, err := CreateFromSlice("", recs, Options{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	q := Box1D(0, 1<<19)
	amount := func(r *Record) float64 { return float64(r.Amount) }
	res, err := v.RunQuery(AggQuery{
		Predicate: q,
		Aggregates: []AggSpec{
			{Kind: Avg, Value: amount},
			{Kind: Count},
			{Kind: Quantile, Value: amount, Param: 0.5},
		},
		TargetRelError: 0.03,
		ProgressEvery:  500,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exact answers.
	var sum float64
	var n float64
	var vals []float64
	for i := range recs {
		if q.ContainsRecord(&recs[i]) {
			sum += float64(recs[i].Amount)
			n++
			vals = append(vals, float64(recs[i].Amount))
		}
	}
	truth := sum / n
	avg := res.Groups[0].Estimates[0]
	if math.Abs(avg.Value-truth) > 0.1*truth {
		t.Fatalf("AVG %v vs exact %v", avg.Value, truth)
	}
	cnt := res.Groups[0].Estimates[1]
	if math.Abs(cnt.Value-n) > 0.2*n {
		t.Fatalf("COUNT %v vs exact %v", cnt.Value, n)
	}
	med := res.Groups[0].Estimates[2]
	if !med.HasCI {
		t.Fatal("median should carry an interval")
	}
}

func TestRunQueryOverAppendedView(t *testing.T) {
	recs := genRecords(5000, 33)
	v, err := CreateFromSlice("", recs, Options{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for i := 0; i < 1000; i++ {
		v.Append(Record{Key: int64(i), Amount: 7, Seq: uint64(1<<40 + i)})
	}
	res, err := v.RunQuery(AggQuery{
		Predicate:  FullBox(1),
		Aggregates: []AggSpec{{Kind: Count}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("exhaustive run over appended view should be exact")
	}
	if got := res.Groups[0].Estimates[0].Value; got != 6000 {
		t.Fatalf("COUNT = %v, want 6000", got)
	}
}
