package sampleview

import (
	"sampleview/internal/aqp"
	"sampleview/internal/record"
)

// Approximate aggregate queries (online aggregation) over a view. The
// types re-export internal/aqp so that callers can build queries without
// touching internal packages.
type (
	// AggQuery is an approximate aggregate query: predicate, aggregates,
	// optional GROUP BY, confidence level and stopping rule.
	AggQuery = aqp.Query
	// AggSpec is one requested aggregate column.
	AggSpec = aqp.Aggregate
	// AggKind selects COUNT/SUM/AVG/MIN/MAX.
	AggKind = aqp.AggKind
	// AggResult is a running or final snapshot of the estimates.
	AggResult = aqp.Result
	// AggEstimate is one aggregate's value with its confidence interval.
	AggEstimate = aqp.Estimate
	// AggGroup is one GROUP BY partition of a result.
	AggGroup = aqp.Group
)

// Aggregate kinds.
const (
	Count    = aqp.Count
	Sum      = aqp.Sum
	Avg      = aqp.Avg
	Min      = aqp.Min
	Max      = aqp.Max
	Quantile = aqp.Quantile
)

// aqpSource adapts a View to the engine's Source interface.
type aqpSource struct{ v *View }

func (s aqpSource) SampleStream(q record.Box) (aqp.Stream, error) { return s.v.Query(q) }
func (s aqpSource) EstimateCount(q record.Box) (float64, error)   { return s.v.EstimateCount(q) }

// RunQuery evaluates an approximate aggregate query against the view,
// streaming samples until the stopping rule fires or the predicate is
// exhausted (in which case the result is exact).
func (v *View) RunQuery(q AggQuery) (*AggResult, error) {
	return aqp.Run(aqpSource{v}, q)
}

// AQPSource returns the view as an aqp.Source, for callers that drive the
// aggregate engine directly and swap local and remote sources (for
// example, svquery with and without -connect).
func (v *View) AQPSource() aqp.Source { return aqpSource{v} }
