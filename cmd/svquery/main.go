// Command svquery runs approximate aggregate SQL against a sample view,
// reporting running estimates with confidence intervals as the online
// sample grows (online aggregation a la Hellerstein et al., the paper's
// motivating application).
//
// Usage:
//
//	svquery -view sale.view "SELECT AVG(amount) FROM sale WHERE key BETWEEN 100 AND 5000 ERROR 1"
//	svquery -view sale.view "SELECT COUNT(*), SUM(amount) FROM sale GROUP BY bucket(key, 100000000) LIMIT 50000 SAMPLES"
//
// The ERROR clause (a percentage) stops the scan once every estimate's
// confidence interval is that tight; without it the query runs until the
// predicate is exhausted and the answers are exact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sampleview"
	"sampleview/internal/sqlish"
)

func main() {
	var (
		view  = flag.String("view", "", "view file to query (required)")
		quiet = flag.Bool("quiet", false, "suppress progress snapshots")
	)
	flag.Parse()
	if *view == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: svquery -view file.view \"SELECT ...\"")
		os.Exit(2)
	}
	st, err := sqlish.Parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
		os.Exit(2)
	}

	v, err := sampleview.Open(*view, sampleview.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
		os.Exit(1)
	}
	defer v.Close()
	if st.Dims > v.Dims() {
		fmt.Fprintf(os.Stderr, "svquery: query constrains %d dimensions but the view indexes %d\n",
			st.Dims, v.Dims())
		os.Exit(2)
	}
	// A 1-d query over a 2-d view needs a 2-d predicate.
	if st.Dims == 1 && v.Dims() == 2 {
		st.Query.Predicate = sampleview.Box2D(
			st.Query.Predicate.Dim(0).Lo, st.Query.Predicate.Dim(0).Hi,
			sampleview.FullBox(2).Dim(1).Lo, sampleview.FullBox(2).Dim(1).Hi,
		)
	}

	q := st.Query
	if !*quiet {
		q.Progress = func(r *sampleview.AggResult) bool {
			fmt.Printf("-- after %d samples\n", r.Samples)
			printResult(r)
			return true
		}
		q.ProgressEvery = 5000
	}
	res, err := v.RunQuery(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
		os.Exit(1)
	}
	if res.Exact {
		fmt.Printf("== final (exact: predicate exhausted after %d records)\n", res.Samples)
	} else {
		fmt.Printf("== final (approximate, %d samples)\n", res.Samples)
	}
	printResult(res)
}

func printResult(r *sampleview.AggResult) {
	for _, g := range r.Groups {
		var cols []string
		for _, e := range g.Estimates {
			col := fmt.Sprintf("%v=%.4g", e.Agg.Kind, e.Value)
			if e.HasCI && e.Lo != e.Hi {
				col += fmt.Sprintf(" ci[%.4g, %.4g]", e.Lo, e.Hi)
			} else if !e.HasCI {
				col += " (observed)"
			}
			cols = append(cols, col)
		}
		if g.Key != "" {
			fmt.Printf("  %-24s %s\n", g.Key, strings.Join(cols, "  "))
		} else {
			fmt.Printf("  %s\n", strings.Join(cols, "  "))
		}
	}
}
