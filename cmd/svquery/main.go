// Command svquery runs approximate aggregate SQL against a sample view,
// reporting running estimates with confidence intervals as the online
// sample grows (online aggregation a la Hellerstein et al., the paper's
// motivating application).
//
// Usage:
//
//	svquery -view sale.view "SELECT AVG(amount) FROM sale WHERE key BETWEEN 100 AND 5000 ERROR 1"
//	svquery -view sale.view "SELECT COUNT(*), SUM(amount) FROM sale GROUP BY bucket(key, 100000000) LIMIT 50000 SAMPLES"
//	svquery -connect 127.0.0.1:7070 -view sale "SELECT COUNT(*) FROM sale ERROR 1"
//
// The ERROR clause (a percentage) stops the scan once every estimate's
// confidence interval is that tight; without it the query runs until the
// predicate is exhausted and the answers are exact.
//
// With -connect the query runs against a view served by svserve: -view
// names the served view instead of a local file, and samples stream over
// the network with identical statistical guarantees.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sampleview"
	"sampleview/internal/aqp"
	"sampleview/internal/server"
	"sampleview/internal/sqlish"
)

func main() {
	var (
		view    = flag.String("view", "", "view file to query, or served view name with -connect (required)")
		connect = flag.String("connect", "", "query a remote svserve at host:port instead of a local file")
		quiet   = flag.Bool("quiet", false, "suppress progress snapshots")
	)
	flag.Parse()
	if *view == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: svquery [-connect host:port] -view file.view \"SELECT ...\"")
		os.Exit(2)
	}
	st, err := sqlish.Parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
		os.Exit(2)
	}

	// Resolve the sampling source: a local view file or a served view.
	var src aqp.Source
	var dims int
	if *connect != "" {
		cl, err := server.Dial(*connect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
			os.Exit(1)
		}
		defer cl.Close()
		rv, err := cl.OpenView(*view)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
			os.Exit(1)
		}
		src, dims = rv, rv.Dims()
	} else {
		v, err := sampleview.Open(*view, sampleview.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
			os.Exit(1)
		}
		defer v.Close()
		src, dims = v.AQPSource(), v.Dims()
	}
	if st.Dims > dims {
		fmt.Fprintf(os.Stderr, "svquery: query constrains %d dimensions but the view indexes %d\n",
			st.Dims, dims)
		os.Exit(2)
	}
	// A 1-d query over a 2-d view needs a 2-d predicate.
	if st.Dims == 1 && dims == 2 {
		st.Query.Predicate = sampleview.Box2D(
			st.Query.Predicate.Dim(0).Lo, st.Query.Predicate.Dim(0).Hi,
			sampleview.FullBox(2).Dim(1).Lo, sampleview.FullBox(2).Dim(1).Hi,
		)
	}

	q := st.Query
	if !*quiet {
		q.Progress = func(r *sampleview.AggResult) bool {
			fmt.Printf("-- after %d samples\n", r.Samples)
			printResult(r)
			return true
		}
		q.ProgressEvery = 5000
	}
	res, err := aqp.Run(src, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svquery: %v\n", err)
		os.Exit(1)
	}
	if res.Exact {
		fmt.Printf("== final (exact: predicate exhausted after %d records)\n", res.Samples)
	} else {
		fmt.Printf("== final (approximate, %d samples)\n", res.Samples)
	}
	printResult(res)
}

func printResult(r *sampleview.AggResult) {
	for _, g := range r.Groups {
		var cols []string
		for _, e := range g.Estimates {
			col := fmt.Sprintf("%v=%.4g", e.Agg.Kind, e.Value)
			if e.HasCI && e.Lo != e.Hi {
				col += fmt.Sprintf(" ci[%.4g, %.4g]", e.Lo, e.Hi)
			} else if !e.HasCI {
				col += " (observed)"
			}
			cols = append(cols, col)
		}
		if g.Key != "" {
			fmt.Printf("  %-24s %s\n", g.Key, strings.Join(cols, "  "))
		} else {
			fmt.Printf("  %s\n", strings.Join(cols, "  "))
		}
	}
}
