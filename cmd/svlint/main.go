// Command svlint runs the repository's static-analysis suite: a
// standard-library-only multichecker enforcing the contracts the
// reproduction's correctness rests on (seeded randomness, simulated time,
// copy-out buffer-pool access, lock annotations, error prefixes,
// documented panics), plus a type-aware interprocedural tier (clock-charge
// dataflow, lock-order deadlock detection, goroutine and resource
// lifecycle). See internal/analysis for the individual checks and
// DESIGN.md "Enforced invariants" for the contract each encodes.
//
// Usage:
//
//	svlint [-list] [-json] [-nottyped] [packages]
//
// Package patterns are directories relative to the current working
// directory; a trailing /... recurses. With no arguments, ./... is
// assumed. Findings can be silenced case by case with a
// "//lint:ignore <analyzer> <reason>" comment on or directly above the
// offending line; unused or malformed directives are themselves reported.
// svlint exits 0 when the tree is clean, 1 when it found violations, and 2
// on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"sampleview/internal/analysis"
)

// jsonDiag is the -json wire form of one finding, one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		list    = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON Lines on stdout")
		noTyped = flag.Bool("notyped", false, "skip the type-aware tier (syntactic analyzers only)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllTyped() {
			fmt.Printf("%-14s %s (type-aware)\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		dir, recurse := strings.CutSuffix(pat, "...")
		dir = filepath.Clean(dir)
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if recurse {
			loaded, err := analysis.LoadTree(fset, dir, modRoot)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, loaded...)
			continue
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			fatal(err)
		}
		pkg, err := analysis.LoadDir(fset, dir, filepath.ToSlash(rel))
		if err != nil {
			fatal(err)
		}
		if pkg == nil {
			fatal(fmt.Errorf("no Go files in %s", dir))
		}
		pkgs = append(pkgs, pkg)
	}

	var prog *analysis.Program
	if !*noTyped {
		prog, err = analysis.TypeCheck(fset, pkgs, modRoot)
		if err != nil {
			fatal(err)
		}
	}

	diags := analysis.RunSuite(pkgs, prog, analysis.All(), analysis.AllTyped())
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				File: pos.Filename, Line: pos.Line, Column: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "svlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "svlint: %v\n", err)
	os.Exit(2)
}
