// Command svlint runs the repository's static-analysis suite: a
// standard-library-only multichecker enforcing the contracts the
// reproduction's correctness rests on (seeded randomness, simulated time,
// copy-out buffer-pool access, lock annotations, error prefixes,
// documented panics). See internal/analysis for the individual checks and
// DESIGN.md "Enforced invariants" for the contract each encodes.
//
// Usage:
//
//	svlint [-list] [packages]
//
// Package patterns are directories relative to the current working
// directory; a trailing /... recurses. With no arguments, ./... is
// assumed. svlint exits 0 when the tree is clean, 1 when it found
// violations, and 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"sampleview/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		dir, recurse := strings.CutSuffix(pat, "...")
		dir = filepath.Clean(dir)
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if recurse {
			loaded, err := analysis.LoadTree(fset, dir, modRoot)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, loaded...)
			continue
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			fatal(err)
		}
		pkg, err := analysis.LoadDir(fset, dir, filepath.ToSlash(rel))
		if err != nil {
			fatal(err)
		}
		if pkg == nil {
			fatal(fmt.Errorf("no Go files in %s", dir))
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, analysis.All())
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "svlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "svlint: %v\n", err)
	os.Exit(2)
}
