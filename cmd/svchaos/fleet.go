package main

// Fleet mode (-fleet): the replicated-serving drill. For each fleet size
// K in {1, 2, 4} it builds K byte-identical replicas of one view, fronts
// them with an in-process router, and runs two phases:
//
//  1. bench — a closed-loop multi-connection workload through the router,
//     reporting fleet-wide batch-latency percentiles and the per-node
//     distribution of placed streams;
//  2. kill drill (K >= 2) — a seeded stream is pulled partway, the replica
//     hosting it is shut down outright, and the drained remainder must be
//     byte-identical to an uninterrupted local stream over the same view
//     bytes (no gap, no duplicate, no reorder), with the post-migration
//     suffix still chi-square-uniform over the query range.
//
// The -out report (results/fleet-bench.md in CI) is the fleet counterpart
// of the chaos report: contract verdicts plus the scaling table.

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sampleview"
	"sampleview/internal/fleet"
	"sampleview/internal/record"
	"sampleview/internal/server"
	"sampleview/internal/stats"
	"sampleview/internal/workload"
)

// fleetSizes is the scaling ladder the drill walks.
var fleetSizes = []int{1, 2, 4}

const (
	fleetBenchClients = 8
	fleetBenchOps     = 4
	fleetBenchSamples = 2000
	fleetBenchBatch   = 256
	fleetHoldPerNode  = 8 // streams held open per replica in the placement probe
	fleetReplicaCap   = 64
)

// fleetResult aggregates one fleet size's run.
type fleetResult struct {
	k          int
	elapsed    time.Duration
	records    int64
	ops        int
	rejections int
	batchLat   []time.Duration
	perNode    []int64 // open streams per replica during the hold probe
	violations []string
	// kill-drill fields (K >= 2 only).
	drillRan   bool
	killAt     int
	total      int
	migrations int64
	suffixN    int
	suffixP    float64
}

// chaosFleet is one running fleet: K replica servers plus the router.
type chaosFleet struct {
	router   *fleet.Router
	addr     string
	replicas []*server.Server
	views    []*sampleview.View
	closers  []func()
}

func (cf *chaosFleet) close() {
	cf.router.Shutdown()
	for _, srv := range cf.replicas {
		srv.Shutdown()
	}
	for _, c := range cf.closers {
		c()
	}
}

// startChaosFleet builds K byte-identical replica views from recs (same
// records, same build seed — the replica-consistency invariant), serves
// each, and fronts them with a router. Hedging is off so exactly one
// replica hosts any stream, making the kill drill's victim unambiguous.
func startChaosFleet(dir string, k int, recs []record.Record, seed uint64) (*chaosFleet, error) {
	cf := &chaosFleet{}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		path := filepath.Join(dir, fmt.Sprintf("fleet%d-replica%d.view", k, i))
		v, err := sampleview.CreateFromSlice(path, recs, sampleview.Options{Seed: seed})
		if err != nil {
			cf.close()
			return nil, err
		}
		cf.views = append(cf.views, v)
		cf.closers = append(cf.closers, func() { v.Close() })

		srv := server.New(server.Config{
			MaxStreams: fleetReplicaCap,
			ReplicaID:  fmt.Sprintf("replica-%d", i),
		})
		srv.AddView("fleet", v)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cf.close()
			return nil, err
		}
		go srv.Serve(ln)
		cf.replicas = append(cf.replicas, srv)
		addrs[i] = ln.Addr().String()
	}
	router, err := fleet.New(fleet.Config{Replicas: addrs, Seed: seed})
	if err != nil {
		cf.close()
		return nil, err
	}
	if err := router.Connect(); err != nil {
		cf.close()
		return nil, err
	}
	cf.router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cf.close()
		return nil, err
	}
	go router.Serve(ln)
	cf.addr = ln.Addr().String()
	return cf, nil
}

// runFleetMode is the -fleet entry point. Returns the process exit code.
func runFleetMode(nrecords int, seed uint64, out string) int {
	dir, err := os.MkdirTemp("", "svchaos-fleet-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	recs := genRecords(nrecords, seed)
	fmt.Printf("fleet drill: %d records per replica; K in %v; %d clients x %d ops x %d samples per fleet\n",
		nrecords, fleetSizes, fleetBenchClients, fleetBenchOps, fleetBenchSamples)

	var results []fleetResult
	failed := false
	for _, k := range fleetSizes {
		res := runFleetSize(dir, k, recs, seed)
		results = append(results, res)
		verdict := "ok"
		if len(res.violations) > 0 {
			verdict = "CONTRACT VIOLATED"
			failed = true
		}
		sort.Slice(res.batchLat, func(i, j int) bool { return res.batchLat[i] < res.batchLat[j] })
		drill := "skipped (single replica)"
		if res.drillRan {
			drill = fmt.Sprintf("killed at %d/%d, %d migrations, suffix p=%.3f (n=%d)",
				res.killAt, res.total, res.migrations, res.suffixP, res.suffixN)
		}
		fmt.Printf("K=%d  %7d recs %6.1fs  batch p99=%-10v streams/node=%v  drill: %s  %s\n",
			k, res.records, res.elapsed.Seconds(),
			fleetPercentile(res.batchLat, 0.99).Round(time.Microsecond),
			res.perNode, drill, verdict)
		for i, v := range res.violations {
			if i == 5 {
				fmt.Printf("    ... and %d more\n", len(res.violations)-5)
				break
			}
			fmt.Printf("    violation: %s\n", v)
		}
	}

	report := buildFleetReport(nrecords, seed, results)
	if out != "" {
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			return 1
		}
		if err := os.WriteFile(out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			return 1
		}
		fmt.Printf("report written to %s\n", out)
	}
	if failed {
		return 1
	}
	return 0
}

// runFleetSize runs the bench and (for K >= 2) the kill drill against one
// fleet of k replicas.
func runFleetSize(dir string, k int, recs []record.Record, seed uint64) fleetResult {
	res := fleetResult{k: k, suffixP: 1}
	cf, err := startChaosFleet(dir, k, recs, seed)
	if err != nil {
		res.violations = append(res.violations, err.Error())
		return res
	}
	defer cf.close()
	start := time.Now()

	// Placement probe: hold open streams from many connections (placement
	// keys differ per connection) and record how they spread across nodes.
	hold := fleetHoldPerNode * k
	conns := make([]*server.Client, 0, hold)
	streams := make([]*server.RemoteStream, 0, hold)
	for i := 0; i < hold; i++ {
		cl, err := server.Dial(cf.addr)
		if err != nil {
			res.violations = append(res.violations, fmt.Sprintf("hold dial: %v", err))
			break
		}
		conns = append(conns, cl)
		rv, err := cl.OpenView("fleet")
		if err != nil {
			res.violations = append(res.violations, fmt.Sprintf("hold open view: %v", err))
			break
		}
		s, err := rv.Query(record.FullBox(1))
		if err != nil {
			res.violations = append(res.violations, fmt.Sprintf("hold open stream: %v", err))
			break
		}
		streams = append(streams, s)
	}
	for _, srv := range cf.replicas {
		res.perNode = append(res.perNode, srv.Snapshot().OpenStreams)
	}
	for _, s := range streams {
		s.Close()
	}
	for _, cl := range conns {
		cl.Close()
	}

	// Bench: the svload-style closed loop through the router.
	perClient := make([]fleetResult, fleetBenchClients)
	var wg sync.WaitGroup
	for c := 0; c < fleetBenchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			perClient[c] = runFleetBenchClient(cf.addr, seed+uint64(c)*1000003)
		}(c)
	}
	wg.Wait()
	for i := range perClient {
		pc := &perClient[i]
		res.records += pc.records
		res.ops += pc.ops
		res.rejections += pc.rejections
		res.batchLat = append(res.batchLat, pc.batchLat...)
		res.violations = append(res.violations, pc.violations...)
	}

	if k >= 2 {
		runFleetKillDrill(cf, &res, seed)
	}
	res.elapsed = time.Since(start)
	return res
}

// runFleetBenchClient drives one connection through the bench loop.
func runFleetBenchClient(addr string, seed uint64) fleetResult {
	var res fleetResult
	fail := func(format string, args ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, args...))
	}
	cl, err := server.Dial(addr)
	if err != nil {
		fail("bench dial: %v", err)
		return res
	}
	defer cl.Close()
	rv, err := cl.OpenView("fleet")
	if err != nil {
		fail("bench open view: %v", err)
		return res
	}
	qg := workload.NewQueryGen(seed)
	for op := 0; op < fleetBenchOps; op++ {
		q := qg.Range1D(selectivities[op%len(selectivities)])
		s, err := rv.Query(q)
		if err != nil {
			if server.IsAdmissionReject(err) {
				res.rejections++
				continue
			}
			fail("op %d: open stream: %v", op, err)
			return res
		}
		s.SetBatchSize(fleetBenchBatch)
		seen := make(map[uint64]struct{}, fleetBenchSamples)
		got := 0
		for got < fleetBenchSamples {
			t0 := time.Now()
			batch, err := s.NextBatch()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail("op %d: next batch: %v", op, err)
				break
			}
			res.batchLat = append(res.batchLat, time.Since(t0))
			for i := range batch {
				if !q.ContainsRecord(&batch[i]) {
					fail("op %d: record seq %d outside the predicate", op, batch[i].Seq)
				}
				if _, dup := seen[batch[i].Seq]; dup {
					fail("op %d: duplicate seq %d", op, batch[i].Seq)
				}
				seen[batch[i].Seq] = struct{}{}
			}
			got += len(batch)
		}
		res.records += int64(got)
		res.ops++
		s.Close()
	}
	return res
}

// runFleetKillDrill pulls a seeded stream a third of the way, kills the
// replica hosting it, and verifies the migrated remainder: byte-identical
// to the uninterrupted local reference, and the post-migration suffix
// still chi-square-uniform over the query range.
func runFleetKillDrill(cf *chaosFleet, res *fleetResult, seed uint64) {
	fail := func(format string, args ...any) {
		res.violations = append(res.violations, fmt.Sprintf("drill: %s", fmt.Sprintf(format, args...)))
	}
	res.drillRan = true
	q := record.Box1D(0, workload.KeyDomain/2)
	drillSeed := seed ^ 0xca11ab1e

	// The determinism reference: the uninterrupted local stream over the
	// same view bytes every replica serves.
	ls, err := cf.views[0].QuerySeeded(q, drillSeed)
	if err != nil {
		fail("local reference: %v", err)
		return
	}
	var want []record.Record
	for {
		rec, err := ls.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail("local reference: %v", err)
			ls.Close()
			return
		}
		want = append(want, rec)
	}
	ls.Close()
	res.total = len(want)
	res.killAt = len(want) / 3

	cl, err := server.Dial(cf.addr)
	if err != nil {
		fail("dial: %v", err)
		return
	}
	defer cl.Close()
	rv, err := cl.OpenView("fleet")
	if err != nil {
		fail("open view: %v", err)
		return
	}
	rs, err := rv.QueryAt(q, drillSeed, 0)
	if err != nil {
		fail("open seeded stream: %v", err)
		return
	}
	rs.SetBatchSize(fleetBenchBatch)
	got := make([]record.Record, 0, len(want))
	for len(got) < res.killAt {
		rec, err := rs.Next()
		if err != nil {
			fail("pre-kill pull after %d records: %v", len(got), err)
			return
		}
		got = append(got, rec)
	}

	victim := -1
	for i, srv := range cf.replicas {
		if srv.Snapshot().OpenStreams > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		fail("no replica hosts the drill stream")
		return
	}
	cf.replicas[victim].Shutdown()

	for {
		rec, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail("post-kill pull after %d records: %v", len(got), err)
			return
		}
		got = append(got, rec)
	}

	// Byte-identity: no gap, no duplicate, no reorder anywhere in the
	// resumed sequence.
	if len(got) != len(want) {
		fail("resumed stream delivered %d records, reference has %d", len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			fail("resumed stream diverges from the reference at record %d (remote seq %d, local seq %d)",
				i, got[i].Seq, want[i].Seq)
			return
		}
	}

	// Post-migration suffix uniformity: the records served after the kill
	// must still look like a uniform sample of the query range.
	kr := q.Dim(0)
	width := kr.Hi - kr.Lo + 1
	hist := make([]int64, uniformityBuckets)
	for _, rec := range got[res.killAt:] {
		b := (rec.Key - kr.Lo) * uniformityBuckets / width
		if b >= 0 && b < uniformityBuckets {
			hist[b]++
		}
	}
	res.suffixN = len(got) - res.killAt
	if res.suffixN >= minUniformitySample {
		p, err := stats.ChiSquareUniformPValue(hist)
		if err != nil {
			fail("suffix uniformity: %v", err)
			return
		}
		res.suffixP = p
		if p < uniformityAlpha {
			fail("post-migration suffix fails uniformity: p=%g over %d records", p, res.suffixN)
		}
	}

	snap, err := cl.ServerStats()
	if err != nil {
		fail("router stats: %v", err)
		return
	}
	res.migrations = snap.Migrations
	if snap.Migrations == 0 {
		fail("router reports no migrations after the hosting replica was killed")
	}
	if snap.ReplicasLive != int64(res.k-1) {
		fail("router reports %d live replicas after the kill, want %d", snap.ReplicasLive, res.k-1)
	}
}

func fleetPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

func buildFleetReport(nrecords int, seed uint64, results []fleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fleet bench: replicated serving with kill-a-replica drills\n\n")
	fmt.Fprintf(&b, "For each fleet size K a router fronts K byte-identical replicas "+
		"(%d records each, build seed %d). The bench runs %d closed-loop clients "+
		"(%d ops each, %d-sample budget, batches of %d) through the router; the "+
		"placement probe holds %d streams per node open from distinct connections.\n\n",
		nrecords, seed, fleetBenchClients, fleetBenchOps, fleetBenchSamples,
		fleetBenchBatch, fleetHoldPerNode)
	fmt.Fprintf(&b, "| K | records | wall | records/sec | batch p50 | batch p90 | batch p99 | streams per node | violations |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range results {
		sort.Slice(r.batchLat, func(i, j int) bool { return r.batchLat[i] < r.batchLat[j] })
		nodes := make([]string, len(r.perNode))
		for i, n := range r.perNode {
			nodes[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "| %d | %d | %v | %.0f | %v | %v | %v | %s | %d |\n",
			r.k, r.records, r.elapsed.Round(time.Millisecond),
			float64(r.records)/r.elapsed.Seconds(),
			fleetPercentile(r.batchLat, 0.50).Round(time.Microsecond),
			fleetPercentile(r.batchLat, 0.90).Round(time.Microsecond),
			fleetPercentile(r.batchLat, 0.99).Round(time.Microsecond),
			strings.Join(nodes, " / "), len(r.violations))
	}
	fmt.Fprintf(&b, "\nKill drill (K >= 2): pull a seeded stream a third of the way, shut the "+
		"hosting replica down, drain the rest through the router's live migration.\n\n")
	fmt.Fprintf(&b, "| K | killed at | total records | byte-identical | migrations | suffix n | suffix chi-square p |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	for _, r := range results {
		if !r.drillRan {
			fmt.Fprintf(&b, "| %d | - | - | n/a (single replica) | - | - | - |\n", r.k)
			continue
		}
		identical := "yes"
		if len(r.violations) > 0 {
			identical = "VIOLATED"
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %s | %d | %d | %.3f |\n",
			r.k, r.killAt, r.total, identical, r.migrations, r.suffixN, r.suffixP)
	}
	fmt.Fprintf(&b, "\nContract: a migrated stream's full sequence is byte-identical to an "+
		"uninterrupted local stream over the same view bytes — no gap, no duplicate, "+
		"no reorder — and the post-migration suffix stays chi-square-uniform "+
		"(%d buckets, alpha %g).\n", uniformityBuckets, uniformityAlpha)
	return b.String()
}
