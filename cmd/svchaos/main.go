// Command svchaos is the end-to-end chaos harness: it builds a sample
// view, serves it on a loopback listener, and replays the svload-style
// closed-loop workload under escalating storage-fault profiles, verifying
// on the fly that the failure-handling contract holds at every level:
//
//   - transient profiles (flaky-disk, flaky-deep) are invisible to
//     clients — zero client-visible errors, every delivered record valid;
//   - corruption and dead pages (bitrot, bad-sector, hell) surface only
//     as typed degraded errors, never as garbage records, duplicates or
//     dropped connections;
//   - delivered samples stay uniform (chi-square over query-range key
//     buckets) whenever no leaf was lost.
//
// Usage:
//
//	svchaos -records 100000 -clients 8 -ops 6 -out results/chaos-bench.md
//	svchaos -profiles flaky-disk,hell -seed 7
//	svchaos -shards 4
//	svchaos -ingest 2 -profiles flaky-disk
//	svchaos -crash -records 20000 -out results/crash-bench.md
//	svchaos -fleet -records 60000 -out results/fleet-bench.md
//
// With -fleet the fault ladder is replaced by the replicated-serving
// drill: for each fleet size K in {1, 2, 4} a router fronts K
// byte-identical replicas, a closed-loop workload measures fleet-wide
// batch-latency percentiles and streams-per-node placement, and (for
// K >= 2) the replica hosting a half-drained seeded stream is killed
// outright — the router must migrate the stream live, with the resumed
// sequence byte-identical to an uninterrupted local stream and the
// post-migration suffix still chi-square-uniform (see fleet.go).
//
// With -crash the fault-profile ladder is replaced by the deterministic
// power-cut ladder: every instrumented crash point is armed at escalating
// hit counts against a WAL-backed view under a seeded write workload, the
// view is reopened after each cut, and recovery is verified — no
// acknowledged write lost, no double-apply, samples still uniform — followed
// by a group-commit vs sync-every-write durability-cost comparison (see
// crash.go).
//
// With -shards K the view is partitioned across K simulated disks and the
// ladder runs against the merged K-way stream; a final shard-kill phase
// then kills one shard outright and verifies the blast radius: typed
// degraded errors only, zero records from the dead shard, every matching
// record of the surviving shards still delivered.
//
// With -ingest W each profile additionally runs W writer connections that
// append fresh records, tombstone part of what they appended, and flush —
// so memview flushes and delta compactions race the faulted reads. Every
// record a reader receives must still be byte-identical to a record some
// writer (or the original build) produced, still in-predicate and still
// duplicate-free, and on transient-only profiles the writers themselves
// must see zero hard errors.
//
// The run prints a per-profile summary and, with -out, writes a markdown
// report. The exit status is non-zero if any contract above was violated.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sampleview"
	"sampleview/internal/record"
	"sampleview/internal/server"
	"sampleview/internal/stats"
	"sampleview/internal/workload"
)

// selectivities is the paper's evaluation mix, cycled per operation.
var selectivities = []float64{0.0025, 0.025, 0.25}

// uniformityBuckets and minUniformitySample size the per-query chi-square
// test: at least ~10 expected records per bucket.
const (
	uniformityBuckets    = 16
	minUniformitySample  = 160
	uniformityAlpha      = 1e-3
	admissionRetryBudget = 50
)

// profileResult aggregates one profile's run.
type profileResult struct {
	profile   string
	elapsed   time.Duration
	records   int64
	ops       int
	retries   int64 // client-side transparent retries
	transient int64 // CodeTransient frames the server sent
	degFrames int64 // CodeDegraded frames the server sent
	degEvents int64 // degraded errors clients observed
	faults    sampleview.FaultCounters
	pvalues   []float64
	pFailures int
	hardErrs  []string // client-visible non-degraded failures
	badRecs   []string // garbage / duplicate / out-of-predicate records
	// ingest-phase activity (zero without -ingest).
	appended  int64
	wdeleted  int64
	flushes   int64
	writeErrs []string // writer-visible hard failures
}

// writtenSet tracks records added through the wire during the run, so the
// readers' byte-identity check covers them: anything served must match the
// original build or a writer's append exactly. Records are registered
// before the append is sent — a reader can race the ack, never the source
// of truth. The set persists across profiles (appends from an earlier
// profile keep getting served in later ones), as does nextWriteSeq, which
// hands each writer batch a fresh disjoint Seq block so a deleted Seq is
// never reinserted.
var (
	writtenSet   sync.Map // Seq → record.Record
	nextWriteSeq atomic.Uint64
)

// writeSeqBase is the first Seq handed to writers; anything at or above it
// entered through the wire rather than the original build.
const writeSeqBase = 1 << 40

// lookupSource resolves a served Seq against the original relation and the
// written set.
func lookupSource(bySeq map[uint64]record.Record, seq uint64) (record.Record, bool) {
	if src, ok := bySeq[seq]; ok {
		return src, true
	}
	if v, ok := writtenSet.Load(seq); ok {
		return v.(record.Record), true
	}
	return record.Record{}, false
}

func main() {
	var (
		nrecords = flag.Int("records", 100_000, "records in the generated view")
		clients  = flag.Int("clients", 8, "concurrent client connections per profile")
		ops      = flag.Int("ops", 6, "queries per client")
		samples  = flag.Int("samples", 2000, "sample budget per query")
		batch    = flag.Int("batch", 256, "records per batch pull")
		seed     = flag.Uint64("seed", 1, "workload and fault-schedule seed")
		profs    = flag.String("profiles", "all", "comma-separated fault profiles, or \"all\" for the escalating ladder")
		shards   = flag.Int("shards", 1, "partition the view across this many simulated disks (>1 adds a shard-kill phase)")
		ingest   = flag.Int("ingest", 0, "writer connections appending/deleting/flushing under each profile")
		crash    = flag.Bool("crash", false, "run the deterministic power-cut ladder instead of the fault-profile ladder")
		fleetOn  = flag.Bool("fleet", false, "run the replicated-serving fleet drill instead of the fault-profile ladder")
		out      = flag.String("out", "", "write the markdown report to this file")
	)
	flag.Parse()
	nextWriteSeq.Store(writeSeqBase)

	if *crash {
		os.Exit(runCrashMode(*nrecords, *seed, *out))
	}
	if *fleetOn {
		os.Exit(runFleetMode(*nrecords, *seed, *out))
	}

	profiles := sampleview.FaultProfiles()
	if *profs != "all" {
		profiles = strings.Split(*profs, ",")
	}

	dir, err := os.MkdirTemp("", "svchaos-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	recs := genRecords(*nrecords, *seed)
	bySeq := make(map[uint64]record.Record, len(recs))
	for _, r := range recs {
		bySeq[r.Seq] = r
	}
	tg, err := buildTarget(dir, recs, *shards, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
		os.Exit(1)
	}
	defer tg.close()
	fmt.Printf("view: %d records across %d shard(s); %d clients x %d ops x %d samples per profile\n",
		tg.count, *shards, *clients, *ops, *samples)

	var results []profileResult
	failed := false
	for _, name := range profiles {
		plan, err := sampleview.FaultProfile(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			os.Exit(2)
		}
		res := runProfile(tg, bySeq, name, plan, *clients, *ops, *samples, *batch, *ingest, *seed)
		results = append(results, res)
		verdict := "ok"
		if !contractHolds(&res) {
			verdict = "CONTRACT VIOLATED"
			failed = true
		}
		fmt.Printf("%-11s %7d recs %6.1fs  retries=%-5d transient=%-5d degraded=%-4d corrupt=%-4d dead=%-3d uniform-fail=%d  %s\n",
			name, res.records, res.elapsed.Seconds(), res.retries, res.transient,
			res.degFrames, res.faults.CorruptPages, res.faults.DeadPages, res.pFailures, verdict)
		if *ingest > 0 {
			fmt.Printf("    ingest: %d appended, %d deleted, %d flushes, %d writer errors\n",
				res.appended, res.wdeleted, res.flushes, len(res.writeErrs))
			for i, e := range res.writeErrs {
				if i == 5 {
					fmt.Printf("    ... and %d more\n", len(res.writeErrs)-5)
					break
				}
				fmt.Printf("    writer error: %s\n", e)
			}
		}
		for i, e := range res.hardErrs {
			if i == 5 {
				fmt.Printf("    ... and %d more\n", len(res.hardErrs)-5)
				break
			}
			fmt.Printf("    hard error: %s\n", e)
		}
		for i, e := range res.badRecs {
			if i == 5 {
				fmt.Printf("    ... and %d more\n", len(res.badRecs)-5)
				break
			}
			fmt.Printf("    bad record: %s\n", e)
		}
	}

	if tg.k > 1 {
		res := runShardKill(tg, bySeq, *seed)
		results = append(results, res)
		verdict := "ok"
		if !shardKillHolds(tg, &res) {
			verdict = "CONTRACT VIOLATED"
			failed = true
		}
		fmt.Printf("%-11s %7d recs %6.1fs  degraded-events=%-4d  %s\n",
			res.profile, res.records, res.elapsed.Seconds(), res.degEvents, verdict)
		for i, e := range append(res.hardErrs, res.badRecs...) {
			if i == 5 {
				break
			}
			fmt.Printf("    violation: %s\n", e)
		}
	}

	report := buildReport(tg.count, *clients, *ops, *samples, *batch, *seed, results)
	if *out != "" {
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// fnv1a hashes a profile name into a seed salt (FNV-1a, 64-bit).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// contractHolds checks the per-profile failure-handling contract: no
// garbage records ever; no client-visible hard errors and no uniformity
// failures unless the profile can permanently lose leaves.
func contractHolds(r *profileResult) bool {
	if len(r.badRecs) > 0 {
		return false
	}
	lossy := r.faults.DeadPages > 0 || r.faults.CorruptPages > 0 || r.degEvents > 0
	if !lossy && (len(r.hardErrs) > 0 || r.pFailures > 0 || len(r.writeErrs) > 0) {
		return false
	}
	// Even lossy profiles must fail cleanly: typed degraded errors are
	// counted in degEvents, anything else is a hard error. Writer failures
	// on lossy profiles are tolerated — a flush can legitimately hit a dead
	// page — but the reads must stay clean regardless.
	return len(r.hardErrs) == 0
}

// target abstracts the served view so the ladder runs identically against
// an unsharded view or a K-way sharded one.
type target struct {
	source server.ViewSource
	count  int64
	k      int
	inject func(sampleview.FaultPlan)
	faults func() sampleview.FaultCounters
	close  func()
	// sharded-only hooks for the shard-kill phase.
	kill   func(int)
	revive func(int)
	route  func(record.Record) int
}

// buildTarget materializes the chaos view: unsharded for shards <= 1,
// partitioned across shards simulated disks otherwise.
func buildTarget(dir string, recs []record.Record, shards int, seed uint64) (*target, error) {
	if shards <= 1 {
		v, err := sampleview.CreateFromSlice(filepath.Join(dir, "chaos.view"), recs, sampleview.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return &target{
			source: server.LocalSource(v),
			count:  v.Count(),
			k:      1,
			inject: v.InjectFaults,
			faults: func() sampleview.FaultCounters { return v.Stats().Faults },
			close:  func() { v.Close() },
		}, nil
	}
	v, err := sampleview.CreateSharded(filepath.Join(dir, "chaos.shards"), recs,
		sampleview.ShardedOptions{K: shards, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &target{
		source: server.ShardedSource(v.View),
		count:  v.Count(),
		k:      shards,
		inject: v.InjectFaults,
		faults: func() sampleview.FaultCounters { return v.View.Stats().Faults },
		close:  func() { v.Close() },
		kill:   v.KillShard,
		revive: v.ReviveShard,
		route:  v.Route,
	}, nil
}

// runProfile serves the view under one fault plan and drives the fleet.
func runProfile(tg *target, bySeq map[uint64]record.Record, name string,
	plan sampleview.FaultPlan, clients, ops, samples, batch, ingest int, seed uint64) profileResult {
	res := profileResult{profile: name}
	before := tg.faults()
	tg.inject(plan)
	defer tg.inject(sampleview.FaultPlan{})

	srv := server.New(server.Config{MaxStreams: 4 * clients, RequestTimeout: 30 * time.Second})
	srv.AddSource("chaos", tg.source)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.hardErrs = append(res.hardErrs, err.Error())
		return res
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	start := time.Now()
	perClient := make([]profileResult, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			perClient[c] = runClient(ln.Addr().String(), bySeq,
				seed+uint64(c)*1000003, ops, samples, batch)
		}(c)
	}
	stop := make(chan struct{})
	perWriter := make([]profileResult, ingest)
	var wwg sync.WaitGroup
	// Writers must NOT replay the same key sequence profile after profile:
	// the written set accumulates across the ladder, and re-appending one
	// profile's key multiset under every later profile would pile up
	// duplicate keys until the census windows of the uniformity check
	// rightly flag the relation itself as non-uniform. Readers deliberately
	// keep identical seeds (the same query mix under every profile); the
	// writer seeds take a per-profile salt.
	salt := fnv1a(name)
	for w := 0; w < ingest; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			perWriter[w] = runIngest(ln.Addr().String(), w, seed+salt+uint64(w)*6700417, stop)
		}(w)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	res.elapsed = time.Since(start)

	for i := range perWriter {
		pw := &perWriter[i]
		res.appended += pw.appended
		res.wdeleted += pw.wdeleted
		res.flushes += pw.flushes
		res.writeErrs = append(res.writeErrs, pw.writeErrs...)
	}

	for i := range perClient {
		pc := &perClient[i]
		res.records += pc.records
		res.ops += pc.ops
		res.retries += pc.retries
		res.degEvents += pc.degEvents
		res.pvalues = append(res.pvalues, pc.pvalues...)
		res.pFailures += pc.pFailures
		res.hardErrs = append(res.hardErrs, pc.hardErrs...)
		res.badRecs = append(res.badRecs, pc.badRecs...)
	}
	snap := srv.Snapshot()
	res.transient = snap.TransientErrors
	res.degFrames = snap.DegradedErrors
	after := tg.faults()
	res.faults = sampleview.FaultCounters{
		Transient:     after.Transient - before.Transient,
		LatencySpikes: after.LatencySpikes - before.LatencySpikes,
		Rereads:       after.Rereads - before.Rereads,
		CorruptPages:  after.CorruptPages - before.CorruptPages,
		DeadPages:     after.DeadPages - before.DeadPages,
	}
	return res
}

// runIngest drives one writer connection until stop closes: append a fresh
// batch of records, tombstone the first half of every third batch, and
// flush every fifth iteration, so the write path churns — memview swaps,
// L0 flushes, compactions — while the faulted readers sample. Transient
// faults are absorbed by the client's retry policy; anything that still
// escapes is recorded as a writer error (tolerated only on lossy profiles).
func runIngest(addr string, id int, seed uint64, stop <-chan struct{}) profileResult {
	var res profileResult
	fail := func(format string, args ...any) {
		res.writeErrs = append(res.writeErrs, fmt.Sprintf("writer %d: %s", id, fmt.Sprintf(format, args...)))
	}
	cl, err := server.Dial(addr)
	if err != nil {
		fail("dial: %v", err)
		return res
	}
	defer cl.Close()
	cl.SetRetryPolicy(server.RetryPolicy{Seed: seed})
	rv, err := cl.OpenView("chaos")
	if err != nil {
		fail("open view: %v", err)
		return res
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	const batchSize = 64
	for iter := 0; ; iter++ {
		select {
		case <-stop:
			return res
		default:
		}
		// Claim a fresh Seq block and register the batch before sending it,
		// so a reader can never see an unregistered record.
		base := nextWriteSeq.Add(batchSize) - batchSize
		batch := make([]record.Record, batchSize)
		for i := range batch {
			batch[i] = record.Record{
				Key:    rng.Int64N(workload.KeyDomain),
				Amount: rng.Int64N(workload.KeyDomain),
				Seq:    base + uint64(i),
			}
			writtenSet.Store(batch[i].Seq, batch[i])
		}
		for {
			n, err := rv.Append(batch)
			if err == nil {
				res.appended += int64(n)
				break
			}
			if server.IsWriteReject(err) {
				if _, ferr := rv.Flush(); ferr != nil {
					fail("flush under backlog: %v", ferr)
					return res
				}
				res.flushes++
				continue
			}
			fail("append: %v", err)
			return res
		}
		if iter%3 == 2 {
			if n, err := rv.Delete(batch[:batchSize/2]); err != nil {
				fail("delete: %v", err)
				return res
			} else {
				res.wdeleted += int64(n)
			}
		}
		if iter%5 == 4 {
			if _, err := rv.Flush(); err != nil {
				fail("flush: %v", err)
				return res
			}
			res.flushes++
		}
	}
}

// runClient drives one connection through its operations, verifying every
// delivered record against the source relation.
func runClient(addr string, bySeq map[uint64]record.Record,
	seed uint64, ops, samples, batch int) profileResult {
	var res profileResult
	fail := func(format string, args ...any) {
		res.hardErrs = append(res.hardErrs, fmt.Sprintf(format, args...))
	}
	cl, err := server.Dial(addr)
	if err != nil {
		fail("dial: %v", err)
		return res
	}
	defer cl.Close()
	cl.SetRetryPolicy(server.RetryPolicy{Seed: seed})
	rv, err := cl.OpenView("chaos")
	if err != nil {
		fail("open view: %v", err)
		return res
	}
	qg := workload.NewQueryGen(seed)
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))

	for op := 0; op < ops; op++ {
		q := qg.Range1D(selectivities[op%len(selectivities)])
		var s *server.RemoteStream
		for attempt := 0; ; attempt++ {
			s, err = rv.Query(q)
			if err == nil {
				break
			}
			if server.IsAdmissionReject(err) && attempt < admissionRetryBudget {
				time.Sleep(time.Duration(1+rng.Int64N(4)) * time.Millisecond)
				continue
			}
			fail("op %d: open stream: %v", op, err)
			return res
		}
		s.SetBatchSize(batch)

		kr := q.Dim(0)
		width := kr.Hi - kr.Lo + 1
		hist := make([]int64, uniformityBuckets)
		seen := make(map[uint64]struct{}, samples)
		got, opDegraded := 0, 0
		for got < samples {
			recs, err := s.NextBatch()
			if err == io.EOF {
				break
			}
			if err != nil {
				if server.IsDegraded(err) {
					res.degEvents++ // typed, clean: the stream keeps serving
					if opDegraded++; opDegraded > 1000 {
						fail("op %d: stream wedged on degraded errors", op)
						break
					}
					continue
				}
				fail("op %d: next batch: %v", op, err)
				break
			}
			for i := range recs {
				r := recs[i]
				src, ok := lookupSource(bySeq, r.Seq)
				if !ok || r != src {
					res.badRecs = append(res.badRecs,
						fmt.Sprintf("op %d: record seq %d not in the source relation (silent corruption)", op, r.Seq))
					continue
				}
				if !q.ContainsRecord(&r) {
					res.badRecs = append(res.badRecs,
						fmt.Sprintf("op %d: record seq %d outside the predicate", op, r.Seq))
				}
				if _, dup := seen[r.Seq]; dup {
					res.badRecs = append(res.badRecs,
						fmt.Sprintf("op %d: duplicate seq %d (not without-replacement)", op, r.Seq))
				}
				seen[r.Seq] = struct{}{}
				b := (r.Key - kr.Lo) * uniformityBuckets / width
				if b >= 0 && b < uniformityBuckets {
					hist[b]++
				}
			}
			got += len(recs)
		}
		// Uniformity of the delivered sample's keys over the query range.
		if got >= minUniformitySample && res.degEvents == 0 {
			if p, err := stats.ChiSquareUniformPValue(hist); err == nil {
				res.pvalues = append(res.pvalues, p)
				if p < uniformityAlpha {
					res.pFailures++
				}
			}
		}
		res.records += int64(got)
		res.ops++
		s.Close()
	}
	res.retries = cl.Retries()
	return res
}

// runShardKill kills one shard of the served view and drains a full-box
// stream over the wire, recording the blast radius: which records arrived
// and what errors surfaced. The shard is revived afterwards.
func runShardKill(tg *target, bySeq map[uint64]record.Record, seed uint64) profileResult {
	res := profileResult{profile: "shard-kill"}
	dead := tg.k - 1
	tg.kill(dead)
	defer tg.revive(dead)

	srv := server.New(server.Config{RequestTimeout: 30 * time.Second})
	srv.AddSource("chaos", tg.source)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.hardErrs = append(res.hardErrs, err.Error())
		return res
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	start := time.Now()
	cl, err := server.Dial(ln.Addr().String())
	if err != nil {
		res.hardErrs = append(res.hardErrs, err.Error())
		return res
	}
	defer cl.Close()
	rv, err := cl.OpenView("chaos")
	if err != nil {
		res.hardErrs = append(res.hardErrs, err.Error())
		return res
	}
	s, err := rv.Query(record.FullBox(1))
	if err != nil {
		res.hardErrs = append(res.hardErrs, err.Error())
		return res
	}
	defer s.Close()

	served := make(map[uint64]struct{}, len(bySeq))
	for {
		recs, err := s.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			if server.IsDegraded(err) {
				res.degEvents++
				if res.degEvents > 100_000 {
					res.hardErrs = append(res.hardErrs, "stream wedged on degraded errors")
					break
				}
				continue
			}
			res.hardErrs = append(res.hardErrs, fmt.Sprintf("next batch: %v", err))
			break
		}
		for i := range recs {
			if src, ok := lookupSource(bySeq, recs[i].Seq); !ok || recs[i] != src {
				res.badRecs = append(res.badRecs,
					fmt.Sprintf("record seq %d not in the source relation", recs[i].Seq))
				continue
			}
			// Base-build records on the dead shard live only on its dead
			// storage and must never appear. Write-path records are exempt:
			// an appended-but-unflushed record sits in the dead shard's
			// in-memory buffer, which a storage kill does not touch, so
			// serving it is the degrade-not-fail contract working (flushed
			// deltas sit on dead pages and are salvaged away).
			if recs[i].Seq < writeSeqBase && tg.route(recs[i]) == dead {
				res.badRecs = append(res.badRecs,
					fmt.Sprintf("record seq %d served from the dead shard %d", recs[i].Seq, dead))
			}
			served[recs[i].Seq] = struct{}{}
		}
		res.records += int64(len(recs))
	}
	for _, r := range bySeq {
		if tg.route(r) != dead {
			if _, ok := served[r.Seq]; !ok {
				res.badRecs = append(res.badRecs,
					fmt.Sprintf("surviving-shard record seq %d never served", r.Seq))
			}
		}
	}
	res.ops = 1
	res.elapsed = time.Since(start)
	snap := srv.Snapshot()
	res.transient = snap.TransientErrors
	res.degFrames = snap.DegradedErrors
	return res
}

// shardKillHolds checks the shard-kill contract: the dead shard degrades
// through typed errors only, and the survivors deliver everything.
func shardKillHolds(tg *target, r *profileResult) bool {
	return len(r.hardErrs) == 0 && len(r.badRecs) == 0 && r.degEvents > 0 && r.records > 0
}

func genRecords(n int, seed uint64) []record.Record {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			Key:    rng.Int64N(workload.KeyDomain),
			Amount: rng.Int64N(workload.KeyDomain),
			Seq:    uint64(i),
		}
	}
	return recs
}

func buildReport(count int64, clients, ops, samples, batch int, seed uint64, results []profileResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Chaos bench: fault injection end to end\n\n")
	fmt.Fprintf(&b, "Closed-loop workload (%d clients x %d ops x %d samples, batches of %d, seed %d) "+
		"against one served view of %d records, repeated under escalating fault profiles. "+
		"Client-side retry policy: capped exponential backoff with seeded jitter.\n\n",
		clients, ops, samples, batch, seed, count)
	fmt.Fprintf(&b, "| profile | records | wall | client retries | transient frames | degraded frames | corrupt pages | dead pages | reread recoveries | latency spikes | hard errors | bad records | uniformity failures | min p |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range results {
		minP := 1.0
		for _, p := range r.pvalues {
			if p < minP {
				minP = p
			}
		}
		pCell := fmt.Sprintf("%.3f", minP)
		if len(r.pvalues) == 0 {
			pCell = "n/a"
		}
		fmt.Fprintf(&b, "| %s | %d | %v | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %s |\n",
			r.profile, r.records, r.elapsed.Round(time.Millisecond), r.retries,
			r.transient, r.degFrames, r.faults.CorruptPages, r.faults.DeadPages,
			r.faults.Rereads, r.faults.LatencySpikes,
			len(r.hardErrs), len(r.badRecs), r.pFailures, pCell)
	}
	anyIngest := false
	for _, r := range results {
		if r.appended > 0 || len(r.writeErrs) > 0 {
			anyIngest = true
		}
	}
	if anyIngest {
		fmt.Fprintf(&b, "\nIngest racing each profile (writers append, tombstone and flush while the readers sample):\n\n")
		fmt.Fprintf(&b, "| profile | appended | deleted | flushes | writer errors |\n|---|---|---|---|---|\n")
		for _, r := range results {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |\n",
				r.profile, r.appended, r.wdeleted, r.flushes, len(r.writeErrs))
		}
	}
	fmt.Fprintf(&b, "\nContract: transient-only profiles deliver with zero client-visible errors; "+
		"lossy profiles (sticky/corrupt pages) fail only through typed degraded errors — "+
		"never silent wrong records, duplicates, or dropped connections.\n")
	return b.String()
}
