package main

// Crash mode (-crash): the deterministic kill-at-every-crash-point ladder.
//
// For every instrumented crash point (post-wal-append, mid-page-write,
// pre-manifest-rename, mid-compaction) and an escalating hit count, one
// drill builds a WAL-backed view, drives a seeded write workload — insert
// batches, group commits, tombstone deletes, flushes, forced compactions —
// until the simulated power cut strikes, then reopens the view and checks
// the recovery contract:
//
//   - every acknowledged write (Commit returned nil) survives, byte-identical;
//   - every acknowledged delete stays deleted;
//   - nothing is applied twice (no duplicate Seq in a full drain);
//   - nothing phantom appears (every served record traces to the base
//     relation or a write the workload actually issued);
//   - the recovered view still serves uniform samples (chi-square over key
//     buckets of a drained prefix).
//
// Writes that were in flight but never acknowledged may land on either side
// of the cut; the drill only requires that they appear at most once.
//
// The mode finishes with a group-commit vs sync-every-write throughput
// comparison on the same simulated disk and, with -out, writes the whole
// run as a markdown report (results/crash-bench.md in CI).

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sampleview"
	"sampleview/internal/record"
	"sampleview/internal/stats"
	"sampleview/internal/workload"
)

const (
	// crashBatch writes per acknowledgement; crashMaxBatches bounds one
	// drill's workload (a drill whose point never fires ends there).
	crashBatch      = 8
	crashMaxBatches = 48
	// crashMaxHits is how deep the per-point hit ladder goes: hit 1 cuts at
	// the first encounter, hit 2 at the second, ...
	crashMaxHits = 3
	// crashUniformPrefix is the drained-prefix size for the post-recovery
	// uniformity check.
	crashUniformPrefix = 2000
)

// crashDrill is one point x hit run of the ladder.
type crashDrill struct {
	point     sampleview.CrashPoint
	hit       int
	fired     bool   // the plan actually cut power
	cutOp     string // workload operation that observed the cut
	acked     int    // inserts acknowledged before the cut
	ackedDel  int    // deletes acknowledged before the cut
	replayed  int64  // WAL operations replayed on recovery
	recovered int    // records served by the recovered view
	pvalue    float64
	pvalid    bool
	errs      []string
}

func (d *crashDrill) failf(format string, args ...any) {
	if len(d.errs) < 8 {
		d.errs = append(d.errs, fmt.Sprintf(format, args...))
	}
}

// runCrashMode executes the full ladder plus the durability-cost bench and
// returns the process exit code.
func runCrashMode(nrecords int, seed uint64, out string) int {
	dir, err := os.MkdirTemp("", "svchaos-crash-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	recs := genRecords(nrecords, seed)
	fmt.Printf("crash ladder: %d base records, %d crash points x up to %d hits\n",
		nrecords, len(sampleview.CrashPoints()), crashMaxHits)

	var drills []crashDrill
	failed := false
	for _, p := range sampleview.CrashPoints() {
		for hit := 1; hit <= crashMaxHits; hit++ {
			d := runCrashDrill(dir, recs, p, hit, seed+fnv1a(p.String())+uint64(hit))
			verdict := "ok"
			if len(d.errs) > 0 {
				verdict = "CONTRACT VIOLATED"
				failed = true
			}
			if !d.fired {
				verdict = "not reached"
			}
			pCell := "n/a"
			if d.pvalid {
				pCell = fmt.Sprintf("%.3f", d.pvalue)
			}
			fmt.Printf("%-20s hit=%d  fired=%-5v cut-at=%-12s acked=%-4d acked-del=%-3d replayed=%-4d recovered=%-6d p=%-6s %s\n",
				d.point, d.hit, d.fired, d.cutOp, d.acked, d.ackedDel, d.replayed, d.recovered, pCell, verdict)
			for _, e := range d.errs {
				fmt.Printf("    violation: %s\n", e)
			}
			drills = append(drills, d)
			if !d.fired {
				break // deeper hits of this point are unreachable too
			}
		}
	}

	bench := runDurabilityBench(dir, recs, seed)
	fmt.Printf("durability cost: sync-every-write %d fsyncs / %d ops (sim %v); group commit %d fsyncs / %d ops (sim %v)\n",
		bench.syncFsyncs, bench.ops, bench.syncSim.Round(time.Millisecond),
		bench.groupFsyncs, bench.ops, bench.groupSim.Round(time.Millisecond))

	if out != "" {
		report := buildCrashReport(nrecords, seed, drills, bench)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			return 1
		}
		if err := os.WriteFile(out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "svchaos: %v\n", err)
			return 1
		}
		fmt.Printf("report written to %s\n", out)
	}
	if failed {
		return 1
	}
	return 0
}

// runCrashDrill runs one drill: build, write until the planned cut (or the
// workload ends), reopen, verify.
func runCrashDrill(dir string, base []record.Record, p sampleview.CrashPoint, hit int, seed uint64) crashDrill {
	d := crashDrill{point: p, hit: hit}
	path := filepath.Join(dir, fmt.Sprintf("drill-%s-%d.view", p, hit))
	opts := sampleview.Options{Seed: seed, WAL: true, WALSyncEvery: crashBatch}
	v, err := sampleview.CreateFromSlice(path, base, opts)
	if err != nil {
		d.failf("create: %v", err)
		return d
	}
	v.InjectCrash(sampleview.CrashPlan{Point: p, Hit: hit})

	// State the verifier needs: acknowledged live inserts, acknowledged
	// deletes, and everything in flight at the moment of the cut.
	ackedLive := make(map[uint64]record.Record)
	ackedDeleted := make(map[uint64]struct{})
	pendingIns := make(map[uint64]record.Record)
	pendingDel := make(map[uint64]struct{})
	g := workload.NewGenerator(workload.Uniform, seed^0xc2b2ae3d27d4eb4f)
	nextSeq := uint64(writeSeqBase)
	var prev []record.Record

	cut := func(op string, err error) bool {
		if err == nil {
			return false
		}
		if sampleview.IsCrash(err) {
			d.fired, d.cutOp = true, op
		} else {
			d.failf("%s failed without a cut: %v", op, err)
		}
		return true
	}

work:
	for batch := 0; batch < crashMaxBatches; batch++ {
		cur := make([]record.Record, 0, crashBatch)
		for i := 0; i < crashBatch; i++ {
			rec := g.Next()
			rec.Seq = nextSeq
			nextSeq++
			if err := v.Insert(rec); cut("insert", err) {
				break work
			}
			pendingIns[rec.Seq] = rec
			cur = append(cur, rec)
		}
		// Every third batch tombstones the first half of the previous
		// (already acknowledged) batch.
		if batch%3 == 2 && len(prev) >= crashBatch/2 {
			for _, rec := range prev[:crashBatch/2] {
				if err := v.Delete(rec); cut("delete", err) {
					break work
				}
				pendingDel[rec.Seq] = struct{}{}
			}
		}
		if err := v.Commit(); cut("commit", err) {
			break work
		}
		for seq, rec := range pendingIns {
			ackedLive[seq] = rec
		}
		for seq := range pendingDel {
			delete(ackedLive, seq)
			ackedDeleted[seq] = struct{}{}
			d.ackedDel++
		}
		d.acked += len(pendingIns)
		pendingIns = make(map[uint64]record.Record)
		pendingDel = make(map[uint64]struct{})
		prev = cur
		if batch%4 == 3 {
			if err := v.Flush(); cut("flush", err) {
				break work
			}
		}
		if batch%8 == 7 {
			if _, err := v.CompactDeltas(true); cut("compact", err) {
				break work
			}
		}
	}
	if d.fired != v.Crashed() {
		d.failf("cut bookkeeping out of sync: fired=%v Crashed=%v", d.fired, v.Crashed())
	}
	if err := v.Close(); err != nil && !sampleview.IsCrash(err) {
		d.failf("close: %v", err)
	}

	re, err := sampleview.Open(path, opts)
	if err != nil {
		d.failf("recovery open: %v", err)
		return d
	}
	defer re.Close()
	d.replayed = re.WriteStats().WALReplayed
	verifyRecovered(&d, re, base, ackedLive, ackedDeleted, pendingIns, pendingDel)
	return d
}

// verifyRecovered drains the recovered view and checks the contract against
// the drill's write ledger.
func verifyRecovered(d *crashDrill, re *sampleview.View, base []record.Record,
	ackedLive map[uint64]record.Record, ackedDeleted map[uint64]struct{},
	pendingIns map[uint64]record.Record, pendingDel map[uint64]struct{}) {
	baseBySeq := make(map[uint64]record.Record, len(base))
	for _, r := range base {
		baseBySeq[r.Seq] = r
	}
	s, err := re.Query(record.FullBox(1))
	if err != nil {
		d.failf("recovery query: %v", err)
		return
	}
	defer s.Close()
	served := make(map[uint64]record.Record)
	hist := make([]int64, uniformityBuckets)
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if sampleview.IsTransient(err) {
				continue
			}
			d.failf("recovery stream: %v", err)
			return
		}
		if _, dup := served[rec.Seq]; dup {
			d.failf("seq %d served twice: write double-applied by recovery", rec.Seq)
		}
		served[rec.Seq] = rec
		// Uniformity over the drained prefix's keys (the live key
		// population is uniform over the domain by construction).
		if len(served) <= crashUniformPrefix {
			b := rec.Key * uniformityBuckets / workload.KeyDomain
			if b >= 0 && b < uniformityBuckets {
				hist[b]++
			}
		}
	}
	d.recovered = len(served)

	for seq, want := range ackedLive {
		if _, inflight := pendingDel[seq]; inflight {
			continue // an unacknowledged delete may land on either side
		}
		got, ok := served[seq]
		if !ok {
			d.failf("acked seq %d lost across the cut", seq)
			continue
		}
		if got != want {
			d.failf("acked seq %d recovered with wrong bytes", seq)
		}
	}
	for seq := range ackedDeleted {
		if _, ok := served[seq]; ok {
			d.failf("acked delete of seq %d undone by recovery", seq)
		}
	}
	for seq := range served {
		if _, ok := baseBySeq[seq]; ok {
			continue
		}
		if _, ok := ackedLive[seq]; ok {
			continue
		}
		if _, ok := pendingIns[seq]; ok {
			continue
		}
		if _, ok := ackedDeleted[seq]; ok {
			continue // resurrection, already reported above
		}
		d.failf("phantom seq %d served by the recovered view", seq)
	}

	n := int64(0)
	for _, c := range hist {
		n += c
	}
	if n >= minUniformitySample {
		if p, err := stats.ChiSquareUniformPValue(hist); err == nil {
			d.pvalue, d.pvalid = p, true
			if p < uniformityAlpha {
				d.failf("recovered sample non-uniform (p=%.5f)", p)
			}
		}
	}
}

// durabilityBench compares the cost of the two durability settings on the
// same simulated disk: sync-every-write (SyncEvery=1, one writer) against
// group commit (a 2ms window, 8 concurrent writers).
type durabilityBench struct {
	ops                    int
	syncFsyncs, syncBytes  int64
	syncSim, syncWall      time.Duration
	groupFsyncs            int64
	groupBytes             int64
	groupSim, groupWall    time.Duration
	groupWriters           int
	syncErrs, groupErrsStr string
}

const (
	benchOps     = 4096
	benchWriters = 8
)

func runDurabilityBench(dir string, base []record.Record, seed uint64) durabilityBench {
	b := durabilityBench{ops: benchOps, groupWriters: benchWriters}

	// Baseline: one writer, one fsync per acknowledged write.
	if v, err := sampleview.CreateFromSlice(filepath.Join(dir, "bench-sync.view"), base,
		sampleview.Options{Seed: seed, WAL: true, WALSyncEvery: 1}); err != nil {
		b.syncErrs = err.Error()
	} else {
		g := workload.NewGenerator(workload.Uniform, seed)
		sim0 := v.SimNow()
		start := time.Now()
		for i := 0; i < benchOps; i++ {
			rec := g.Next()
			rec.Seq = writeSeqBase + uint64(i)
			if err := v.Insert(rec); err != nil {
				b.syncErrs = err.Error()
				break
			}
			if err := v.Commit(); err != nil {
				b.syncErrs = err.Error()
				break
			}
		}
		b.syncWall = time.Since(start)
		b.syncSim = v.SimNow() - sim0
		ws := v.WriteStats()
		b.syncFsyncs, b.syncBytes = ws.WALFsyncs, ws.WALBytes
		v.Close()
	}

	// Group commit: concurrent writers share fsyncs through the cohort.
	if v, err := sampleview.CreateFromSlice(filepath.Join(dir, "bench-group.view"), base,
		sampleview.Options{Seed: seed, WAL: true, WALGroupWindow: 2 * time.Millisecond}); err != nil {
		b.groupErrsStr = err.Error()
	} else {
		sim0 := v.SimNow()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, benchWriters)
		per := benchOps / benchWriters
		for w := 0; w < benchWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				g := workload.NewGenerator(workload.Uniform, seed+uint64(w)*2654435761)
				for i := 0; i < per; i++ {
					rec := g.Next()
					rec.Seq = 2*writeSeqBase + uint64(w*per+i)
					if err := v.Insert(rec); err != nil {
						errs[w] = err
						return
					}
					if err := v.Commit(); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.groupErrsStr = err.Error()
				break
			}
		}
		b.groupWall = time.Since(start)
		b.groupSim = v.SimNow() - sim0
		ws := v.WriteStats()
		b.groupFsyncs, b.groupBytes = ws.WALFsyncs, ws.WALBytes
		v.Close()
	}
	return b
}

func buildCrashReport(nrecords int, seed uint64, drills []crashDrill, bench durabilityBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Crash bench: deterministic power-cut ladder\n\n")
	fmt.Fprintf(&sb, "Each drill arms one crash point at one hit count, drives a seeded write "+
		"workload (insert batches of %d, group commits, tombstone deletes, flushes, forced "+
		"compactions) over a %d-record WAL-backed view until the simulated power cut strikes, "+
		"then reopens the view and verifies recovery (seed %d).\n\n", crashBatch, nrecords, seed)
	fmt.Fprintf(&sb, "Contract: every acknowledged write survives byte-identical, acknowledged "+
		"deletes stay deleted, nothing is applied twice, nothing phantom appears, and the "+
		"recovered view still serves uniform samples (chi-square over %d key buckets, alpha %g).\n\n",
		uniformityBuckets, uniformityAlpha)
	fmt.Fprintf(&sb, "| crash point | hit | fired | cut at | acked | acked deletes | replayed | recovered | p | verdict |\n")
	fmt.Fprintf(&sb, "|---|---|---|---|---|---|---|---|---|---|\n")
	for _, d := range drills {
		verdict := "ok"
		if len(d.errs) > 0 {
			verdict = "VIOLATED: " + d.errs[0]
		} else if !d.fired {
			verdict = "not reached"
		}
		pCell := "n/a"
		if d.pvalid {
			pCell = fmt.Sprintf("%.3f", d.pvalue)
		}
		cutOp := d.cutOp
		if cutOp == "" {
			cutOp = "-"
		}
		fmt.Fprintf(&sb, "| %s | %d | %v | %s | %d | %d | %d | %d | %s | %s |\n",
			d.point, d.hit, d.fired, cutOp, d.acked, d.ackedDel, d.replayed, d.recovered, pCell, verdict)
	}
	fmt.Fprintf(&sb, "\n## Durability cost: group commit vs sync-every-write\n\n")
	fmt.Fprintf(&sb, "%d acknowledged writes on the same simulated disk; the simulated time is "+
		"the disk-busy cost a real device would pay.\n\n", bench.ops)
	fmt.Fprintf(&sb, "| mode | writers | fsyncs | fsyncs/op | wal bytes | sim disk time | sim time/op | wall |\n")
	fmt.Fprintf(&sb, "|---|---|---|---|---|---|---|---|\n")
	row := func(name string, writers int, fsyncs, bytes int64, sim, wall time.Duration, errstr string) {
		if errstr != "" {
			fmt.Fprintf(&sb, "| %s | %d | error: %s | | | | | |\n", name, writers, errstr)
			return
		}
		fmt.Fprintf(&sb, "| %s | %d | %d | %.3f | %d | %v | %v | %v |\n",
			name, writers, fsyncs, float64(fsyncs)/float64(bench.ops), bytes,
			sim.Round(time.Millisecond), (sim / time.Duration(bench.ops)).Round(time.Microsecond),
			wall.Round(time.Millisecond))
	}
	row("sync-every-write", 1, bench.syncFsyncs, bench.syncBytes, bench.syncSim, bench.syncWall, bench.syncErrs)
	row("group-commit (2ms window)", bench.groupWriters, bench.groupFsyncs, bench.groupBytes,
		bench.groupSim, bench.groupWall, bench.groupErrsStr)
	fmt.Fprintf(&sb, "\nGroup commit amortizes the sync barrier across the cohort: fewer fsyncs "+
		"per acknowledged write at identical durability (an ack still means \"on disk\").\n")
	return sb.String()
}
