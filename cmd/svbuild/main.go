// Command svbuild builds a materialized sample view file.
//
// Records come either from the synthetic SALE generator or from a CSV file
// with lines "key,amount" (an optional third column is carried as a
// sequence number; otherwise records are numbered in input order).
//
// Usage:
//
//	svbuild -out sale.view -n 1000000 -dist uniform
//	svbuild -out sale.view -csv sales.csv -dims 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sampleview"
	"sampleview/internal/workload"
)

func main() {
	var (
		out    = flag.String("out", "", "output view file (required)")
		n      = flag.Int64("n", 100_000, "records to generate (ignored with -csv)")
		dist   = flag.String("dist", "uniform", "key distribution: uniform, zipf, clustered")
		csvIn  = flag.String("csv", "", "read records from a CSV file instead of generating")
		dims   = flag.Int("dims", 1, "indexed dimensions (1 = Key, 2 = Key and Amount)")
		height = flag.Int("height", 0, "ACE tree height (0 = auto)")
		seed   = flag.Uint64("seed", 1, "generation and construction seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "svbuild: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var src sampleview.Source
	var err error
	if *csvIn != "" {
		src, err = csvSource(*csvIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svbuild: %v\n", err)
			os.Exit(1)
		}
	} else {
		d, err := workload.ParseDistribution(*dist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svbuild: %v\n", err)
			os.Exit(2)
		}
		gen := workload.NewGenerator(d, *seed)
		remaining := *n
		src = func() (sampleview.Record, bool) {
			if remaining == 0 {
				return sampleview.Record{}, false
			}
			remaining--
			return gen.Next(), true
		}
	}

	start := time.Now()
	v, err := sampleview.Create(*out, src, sampleview.Options{
		Dims:   *dims,
		Height: *height,
		Seed:   *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svbuild: %v\n", err)
		os.Exit(1)
	}
	defer v.Close()
	st := v.Stats()
	fmt.Printf("built %s: %d records, %d dims, height %d, in %v\n",
		*out, v.Count(), v.Dims(), v.Height(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("construction I/O: %d reads, %d writes (simulated disk time %s)\n",
		st.Counters.Reads(), st.Counters.Writes(), st.SimTime)
}

// csvSource streams records from a key,amount[,seq] CSV file.
func csvSource(path string) (sampleview.Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := workload.NewCSVReader(f)
	r.Err = func(line int64, msg string) {
		fmt.Fprintf(os.Stderr, "svbuild: %s:%d: %s\n", path, line, msg)
	}
	var done bool
	return func() (sampleview.Record, bool) {
		if done {
			return sampleview.Record{}, false
		}
		rec, err := r.Next()
		if err != nil {
			if err != io.EOF {
				fmt.Fprintf(os.Stderr, "svbuild: %s: %v\n", path, err)
			}
			done = true
			f.Close()
			return sampleview.Record{}, false
		}
		return rec, true
	}, nil
}
