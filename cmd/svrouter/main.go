// Command svrouter fronts a fleet of svserve replicas with a single
// protocol-compatible endpoint: clients dial the router exactly as they
// would a lone server, and the router places their streams on replicas by
// consistent hash with load-aware spill, enforces fleet-wide per-tenant
// quotas, hedges slow batch pulls against a second replica, and migrates
// live streams off dead replicas with a byte-identical resumed prefix.
//
// Usage:
//
//	svrouter -listen :7000 -replicas 127.0.0.1:7070,127.0.0.1:7071
//
// Every replica must serve byte-identical view files (same records, same
// build seed); the router keeps them identical from there by fanning every
// write out to all live replicas under a per-view write lock.
//
// SIGINT/SIGTERM triggers a graceful drain: new connections are refused,
// open ones are closed, and the router's statistics are printed on exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sampleview/internal/fleet"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7000", "address to listen on")
		replicas   = flag.String("replicas", "", "comma-separated replica addresses (required)")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge a batch pull against a second replica after this long (0 = never)")
		tenStreams = flag.Int("tenant-streams", 0, "fleet-wide open-stream cap per tenant (0 = fair share of fleet capacity)")
		tenRate    = flag.Float64("tenant-write-rate", 0, "per-tenant write admission: sustained entries per second (0 = unlimited)")
		tenBurst   = flag.Int("tenant-write-burst", 0, "per-tenant write admission: token-bucket burst capacity (0 = auto)")
		spill      = flag.Float64("spill-threshold", 0, "place streams past a replica loaded beyond this fraction of its cap (0 = default 0.8)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per replica on the placement ring (0 = default 64)")
		seed       = flag.Uint64("seed", 1, "seed for router-assigned stream seeds")
		maxBatch   = flag.Int("max-batch", 4096, "cap on records per batch response")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "svrouter: -replicas with at least one address is required")
		flag.Usage()
		os.Exit(2)
	}

	router, err := fleet.New(fleet.Config{
		Replicas:         addrs,
		HedgeAfter:       *hedgeAfter,
		SpillThreshold:   *spill,
		TenantStreams:    *tenStreams,
		TenantWriteRate:  *tenRate,
		TenantWriteBurst: *tenBurst,
		VNodes:           *vnodes,
		Seed:             *seed,
		MaxBatch:         *maxBatch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrouter: %v\n", err)
		os.Exit(2)
	}
	if err := router.Connect(); err != nil {
		fmt.Fprintf(os.Stderr, "svrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fleet: %d replicas configured, %d live\n", len(addrs), router.ReplicasLive())
	for _, a := range addrs {
		fmt.Printf("  replica %s\n", a)
	}
	if *hedgeAfter > 0 {
		fmt.Printf("hedged reads: after %v\n", *hedgeAfter)
	}
	if *tenStreams > 0 {
		fmt.Printf("tenant quota: %d streams per tenant\n", *tenStreams)
	} else {
		fmt.Println("tenant quota: fair share of fleet capacity")
	}
	if *tenRate > 0 {
		fmt.Printf("tenant write admission: %.0f entries/s\n", *tenRate)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("routing on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("\n%v: draining...\n", s)
		start := time.Now()
		router.Shutdown()
		fmt.Printf("drained in %v\n", time.Since(start).Round(time.Millisecond))
	}()

	if err := router.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "svrouter: %v\n", err)
		os.Exit(1)
	}
	router.Shutdown() // idempotent; waits if the signal handler is mid-drain
	fmt.Println()
	router.Snapshot().Dump(os.Stdout)
}
