// Command svsample draws an online random sample from a range predicate
// over a sample view built with svbuild, optionally running an online
// aggregation of AVG/SUM(Amount) with confidence intervals as the sample
// grows.
//
// Usage:
//
//	svsample -view sale.view -lo 100 -hi 5000 -count 20
//	svsample -view sale.view -lo 100 -hi 5000 -agg -interval 500
//	svsample -view sale.view -dims 2 -lo 0 -hi 99 -alo 10 -ahi 20 -count 10
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"sampleview"
)

func main() {
	var (
		view     = flag.String("view", "", "view file to open (required)")
		lo       = flag.Int64("lo", math.MinInt64, "lower bound on Key")
		hi       = flag.Int64("hi", math.MaxInt64, "upper bound on Key")
		alo      = flag.Int64("alo", math.MinInt64, "lower bound on Amount (2-d views)")
		ahi      = flag.Int64("ahi", math.MaxInt64, "upper bound on Amount (2-d views)")
		count    = flag.Int("count", 10, "samples to print (0 = drain the predicate)")
		agg      = flag.Bool("agg", false, "run online aggregation of Amount instead of printing records")
		interval = flag.Int("interval", 1000, "with -agg: report every this many samples")
		conf     = flag.Float64("conf", 0.95, "with -agg: confidence level")
	)
	flag.Parse()
	if *view == "" {
		fmt.Fprintln(os.Stderr, "svsample: -view is required")
		flag.Usage()
		os.Exit(2)
	}
	v, err := sampleview.Open(*view, sampleview.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svsample: %v\n", err)
		os.Exit(1)
	}
	defer v.Close()

	var q sampleview.Box
	if v.Dims() == 2 {
		q = sampleview.Box2D(*lo, *hi, *alo, *ahi)
	} else {
		q = sampleview.Box1D(*lo, *hi)
	}
	stream, err := v.Query(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svsample: %v\n", err)
		os.Exit(1)
	}

	if *agg {
		runAgg(v, q, stream, *interval, *conf)
		return
	}
	printed := 0
	for *count == 0 || printed < *count {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "svsample: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("key=%d amount=%d seq=%d\n", rec.Key, rec.Amount, rec.Seq)
		printed++
	}
	st := v.Stats()
	fmt.Fprintf(os.Stderr, "%d samples; I/O: %d random + %d sequential reads; simulated time %s\n",
		printed, st.Counters.RandomReads, st.Counters.SequentialReads, st.SimTime)
}

func runAgg(v *sampleview.View, q sampleview.Box, stream *sampleview.Stream, interval int, conf float64) {
	est, err := v.NewEstimator(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svsample: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("online AVG(Amount), %d%% confidence, estimated population %d\n",
		int(conf*100), est.Population())
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "svsample: %v\n", err)
			os.Exit(1)
		}
		est.Add(float64(rec.Amount))
		if est.Count()%int64(interval) == 0 {
			lo, hi := est.MeanInterval(conf)
			sum, _ := est.SumEstimate()
			fmt.Printf("n=%-10d avg=%.2f  ci=[%.2f, %.2f]  sum~%.0f\n",
				est.Count(), est.Mean(), lo, hi, sum)
		}
	}
	lo, hi := est.MeanInterval(conf)
	fmt.Printf("final: n=%d avg=%.4f ci=[%.4f, %.4f] (predicate exhausted: exact)\n",
		est.Count(), est.Mean(), lo, hi)
}
