package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sampleview"
	"sampleview/internal/iosim"
	"sampleview/internal/workload"
)

// wallSelectivities is the query mix the wall bench rotates through, and
// wallTarget the per-query online-sample budget whose wall-clock delivery
// time is the headline metric.
var wallSelectivities = []float64{0.0025, 0.025, 0.25}

const (
	wallTarget  = 1000 // time-to-first-N budget
	wallSamples = 5000 // total samples drawn per query (throughput metric)
	wallOps     = 4    // queries per worker goroutine
)

// wallConfig is one backend/prefetch combination under test.
type wallConfig struct {
	name     string
	backend  sampleview.BackendKind
	prefetch int
}

func wallConfigs() []wallConfig {
	return []wallConfig{
		{"pread", sampleview.BackendPread, 0},
		{"pread+prefetch", sampleview.BackendPread, 4},
		{"mmap", sampleview.BackendMmap, 0},
		{"mmap+prefetch", sampleview.BackendMmap, 4},
	}
}

// wallResult aggregates one (config, parallelism) cell.
type wallResult struct {
	recsPerSec float64
	ttfP50     time.Duration
	simTTF     time.Duration // simulated TTF at this cell (identical across configs)
}

// runWallBench builds one view file on real disk and streams it through
// every backend/prefetch combination at several parallelism levels,
// reporting wall-clock records/sec and time-to-first-1000 next to the
// simulated baseline, plus a byte-equality check of the sample prefix
// across configurations. The markdown report goes to out.
func runWallBench(n int64, seed uint64, pageSize int, out string) error {
	model := iosim.DefaultModel()
	if pageSize > 0 && pageSize != model.PageSize {
		model.SequentialRead = time.Duration(float64(model.SequentialRead) * float64(pageSize) / float64(model.PageSize))
		model.SequentialWrite = model.SequentialRead
		model.PageSize = pageSize
	}
	memPages := 16 << 20 / model.PageSize

	dir, err := os.MkdirTemp("", "svbench-wall-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "wall.view")

	gen := workload.NewGenerator(workload.Uniform, seed)
	recs := make([]sampleview.Record, n)
	for i := range recs {
		recs[i] = gen.Next()
	}
	buildStart := time.Now()
	v, err := sampleview.CreateFromSlice(path, recs, sampleview.Options{
		Seed: seed, DiskModel: model, MemPages: memPages,
	})
	if err != nil {
		return err
	}
	v.Close()
	fmt.Fprintf(os.Stderr, "svbench: wall view built in %v (%d records, %d B pages)\n",
		time.Since(buildStart).Round(time.Millisecond), n, model.PageSize)

	openOpts := func(c wallConfig) sampleview.Options {
		return sampleview.Options{
			Seed: seed, DiskModel: model,
			Backend: c.backend, PrefetchWorkers: c.prefetch,
		}
	}

	// Byte-equality gate: the same seeded query must deliver the identical
	// sample prefix whatever the backend or prefetch setting — the fast
	// path may only change the wall clock.
	var refPrefix []sampleview.Record
	prefixOK := true
	for i, c := range wallConfigs() {
		prefix, err := wallPrefix(path, openOpts(c), seed)
		if err != nil {
			return fmt.Errorf("prefix check (%s): %w", c.name, err)
		}
		if i == 0 {
			refPrefix = prefix
			continue
		}
		if len(prefix) != len(refPrefix) {
			prefixOK = false
			continue
		}
		for j := range prefix {
			if prefix[j] != refPrefix[j] {
				prefixOK = false
				break
			}
		}
	}
	parallelisms := []int{1, 4, 16}
	results := make(map[string]map[int]wallResult)
	for _, c := range wallConfigs() {
		results[c.name] = make(map[int]wallResult)
		for _, p := range parallelisms {
			r, err := wallCell(path, openOpts(c), seed, p)
			if err != nil {
				return fmt.Errorf("%s par=%d: %w", c.name, p, err)
			}
			results[c.name][p] = r
			fmt.Fprintf(os.Stderr, "svbench: wall %-14s par=%-2d  %10.0f recs/s  ttf%d p50 %v\n",
				c.name, p, r.recsPerSec, wallTarget, r.ttfP50.Round(time.Microsecond))
		}
	}

	return writeWallReport(out, n, seed, model.PageSize, parallelisms, results, prefixOK, len(refPrefix))
}

// wallPrefix opens the view with the given options and collects the first
// 2*wallTarget samples of one fixed seeded query.
func wallPrefix(path string, opts sampleview.Options, seed uint64) ([]sampleview.Record, error) {
	v, err := sampleview.Open(path, opts)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	q := workload.NewQueryGen(seed).Range1D(0.025)
	s, err := v.Query(q)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Sample(2 * wallTarget)
}

// wallCell measures one (options, parallelism) cell: par workers each run
// wallOps seeded queries, drawing wallSamples records per query, on one
// shared view. Aggregate throughput is total records over the cell's wall
// time; TTF is the per-query wall time to the first wallTarget samples.
func wallCell(path string, opts sampleview.Options, seed uint64, par int) (wallResult, error) {
	v, err := sampleview.Open(path, opts)
	if err != nil {
		return wallResult{}, err
	}
	defer v.Close()

	var (
		mu      sync.Mutex
		ttfs    []time.Duration
		simTTFs []time.Duration
		total   int64
		firstE  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qg := workload.NewQueryGen(seed + uint64(w)*7919)
			for op := 0; op < wallOps; op++ {
				q := qg.Range1D(wallSelectivities[op%len(wallSelectivities)])
				s, err := v.Query(q)
				if err == nil {
					opStart := time.Now()
					var first []sampleview.Record
					first, err = s.Sample(wallTarget)
					ttf := time.Since(opStart)
					simTTF := s.SimNow()
					var rest []sampleview.Record
					if err == nil {
						rest, err = s.Sample(wallSamples - wallTarget)
					}
					s.Close()
					if err == nil {
						mu.Lock()
						ttfs = append(ttfs, ttf)
						simTTFs = append(simTTFs, simTTF)
						total += int64(len(first) + len(rest))
						mu.Unlock()
					}
				}
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstE != nil {
		return wallResult{}, firstE
	}
	elapsed := time.Since(start)
	sort.Slice(ttfs, func(i, j int) bool { return ttfs[i] < ttfs[j] })
	sort.Slice(simTTFs, func(i, j int) bool { return simTTFs[i] < simTTFs[j] })
	return wallResult{
		recsPerSec: float64(total) / elapsed.Seconds(),
		ttfP50:     ttfs[len(ttfs)/2],
		simTTF:     simTTFs[len(simTTFs)/2],
	}, nil
}

// writeWallReport renders the results table to out as markdown.
func writeWallReport(out string, n int64, seed uint64, pageSize int, pars []int,
	results map[string]map[int]wallResult, prefixOK bool, prefixLen int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Real-I/O wall-clock benchmark\n\n")
	fmt.Fprintf(&b, "One view of %d records (%d B pages, seed %d) built on real disk, then streamed "+
		"through each raw-I/O backend with and without the async leaf prefetcher. Every cell runs "+
		"the paper's selectivity mix (%v); records/sec is aggregate wall-clock throughput across "+
		"the cell's concurrent streams, and ttf-%d is the median wall time until one query's first "+
		"%d online samples. The simulated column is the same run's iosim time-to-first-%d — it is "+
		"identical across backends by construction, because the fast path never touches the "+
		"simulated clock.\n\n", n, pageSize, seed, wallSelectivities, wallTarget, wallTarget, wallTarget)
	for _, p := range pars {
		fmt.Fprintf(&b, "## Parallelism %d\n\n", p)
		fmt.Fprintf(&b, "| config | records/sec (wall) | ttf-%d p50 (wall) | ttf-%d p50 (simulated) |\n", wallTarget, wallTarget)
		fmt.Fprintf(&b, "|---|---|---|---|\n")
		for _, c := range wallConfigs() {
			r := results[c.name][p]
			fmt.Fprintf(&b, "| %s | %.0f | %v | %v |\n",
				c.name, r.recsPerSec, r.ttfP50.Round(time.Microsecond), r.simTTF.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "\n")
	}
	if prefixOK {
		fmt.Fprintf(&b, "Stream-equality check: PASS — the first %d samples of the same seeded query "+
			"are byte-identical across every backend/prefetch configuration.\n", prefixLen)
	} else {
		fmt.Fprintf(&b, "Stream-equality check: **FAIL** — backends disagreed on the sample prefix.\n")
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "svbench: wall report written to %s\n", out)
	if !prefixOK {
		return fmt.Errorf("stream output differs across backends")
	}
	return nil
}
