// Command svbench regenerates the figures of the paper's evaluation and
// prints each series as TSV.
//
// Usage:
//
//	svbench -fig all                # every figure at default scale
//	svbench -fig 11,12,13 -n 2000000
//	svbench -fig 16 -n 4000000      # 2-d figures discriminate at larger N
//	svbench -shards 1,2,4,8,16 -out results/shard-bench.md
//
// With -shards the figure harness is skipped: the same relation is built
// as a sharded view at each listed shard count and the simulated
// time-to-first-1000-samples is measured per selectivity — shards sit on
// separate simulated disks, so the merged stream's clock is the slowest
// shard's, and the curve should fall near-linearly with K.
//
// Output: one block per figure, tab-separated; the first column is the
// x-axis (% of the time required to scan the relation), followed by one
// column per method (% of the relation's records retrieved; a fraction for
// Figure 15).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sampleview"
	"sampleview/internal/figures"
	"sampleview/internal/workload"
)

func main() {
	var (
		figList  = flag.String("fig", "all", "comma-separated figure ids ("+strings.Join(figures.IDs(), ",")+") or 'all'")
		n        = flag.Int64("n", 0, "records in the SALE relation (0 = default 1M)")
		queries  = flag.Int("queries", 0, "queries averaged per figure (0 = default 10)")
		seed     = flag.Uint64("seed", 2006, "experiment seed")
		grid     = flag.Int("grid", 0, "x-axis grid points (0 = default 160)")
		pool     = flag.Int("pool", 0, "buffer pool pages for rank-based samplers (0 = auto)")
		pageSize = flag.Int("pagesize", 8192, "disk page size in bytes (smaller pages refine leaf granularity)")
		physical = flag.Bool("physical", false, "charge the raw disk model instead of the scale-matched one")
		parallel = flag.Int("par", 0, "worker goroutines for builds and per-figure queries (0 or 1 = sequential)")
		shards   = flag.String("shards", "", "comma-separated shard counts: run the shard-scaling bench instead of figures")
		out      = flag.String("out", "", "shard/wall bench: also write a markdown report to this file")
		wall     = flag.Bool("wall", false, "run the real-I/O wall-clock bench (mmap/pread × prefetch × parallelism) instead of figures")
	)
	flag.Parse()

	if *wall {
		nrec := int64(300_000)
		if *n > 0 {
			nrec = *n
		}
		report := *out
		if report == "" {
			report = "results/realio-bench.md"
		}
		if err := runWallBench(nrec, *seed, *pageSize, report); err != nil {
			fmt.Fprintf(os.Stderr, "svbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shards != "" {
		nrec := int64(200_000)
		if *n > 0 {
			nrec = *n
		}
		if err := runShardBench(*shards, nrec, *seed, *parallel, *out); err != nil {
			fmt.Fprintf(os.Stderr, "svbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := figures.DefaultConfig()
	cfg.Physical = *physical
	cfg.Parallel = *parallel
	if *pageSize > 0 {
		m := cfg.Model
		// Keep the sequential transfer rate (~53 MB/s) of the paper's
		// testbed at the chosen page size.
		m.SequentialRead = time.Duration(float64(m.SequentialRead) * float64(*pageSize) / float64(m.PageSize))
		m.SequentialWrite = m.SequentialRead
		m.PageSize = *pageSize
		cfg.Model = m
		// Keep the external sorts' memory budget at ~16 MB regardless of
		// page size so construction does not degenerate into many-pass
		// merges with small pages.
		if mem := 16 << 20 / *pageSize; mem > cfg.MemPages {
			cfg.MemPages = mem
		}
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.Seed = *seed
	if *grid > 0 {
		cfg.GridPoints = *grid
	}
	if *pool > 0 {
		cfg.PoolPages = *pool
	}

	ids := figures.IDs()
	if *figList != "all" {
		ids = strings.Split(*figList, ",")
	}

	// Group figures by dimensionality so the expensive workbench builds
	// are shared.
	var oneD, twoD []string
	for _, id := range ids {
		switch id {
		case "11", "12", "13", "14", "15a", "15b":
			oneD = append(oneD, id)
		case "16", "17", "18":
			twoD = append(twoD, id)
		default:
			fmt.Fprintf(os.Stderr, "svbench: unknown figure %q\n", id)
			os.Exit(2)
		}
	}

	run := func(dims int, ids []string) {
		if len(ids) == 0 {
			return
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "svbench: building %d-d workbench (n=%d)...\n", dims, cfg.N)
		wb, err := figures.NewWorkbench(cfg, dims)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "svbench: workbench ready in %v (scan time %v)\n",
			time.Since(start).Round(time.Millisecond), wb.ScanTime)
		for _, id := range ids {
			start := time.Now()
			fig, err := generateOn(wb, id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svbench: figure %s: %v\n", id, err)
				os.Exit(1)
			}
			printFigure(fig)
			fmt.Fprintf(os.Stderr, "svbench: figure %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	run(1, oneD)
	run(2, twoD)
}

// shardBenchSelectivities is the paper's evaluation mix.
var shardBenchSelectivities = []float64{0.0025, 0.025, 0.25}

// shardBenchTarget is the online-sample budget per query.
const shardBenchTarget = 1000

// runShardBench builds the same relation as a sharded view at each shard
// count and reports the simulated time-to-first-1000-samples per
// selectivity, plus the speedup over the single-shard baseline.
func runShardBench(list string, n int64, seed uint64, parallelism int, out string) error {
	var ks []int
	for _, f := range strings.Split(list, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k <= 0 {
			return fmt.Errorf("bad shard count %q", f)
		}
		ks = append(ks, k)
	}

	gen := workload.NewGenerator(workload.Uniform, seed)
	recs := make([]sampleview.Record, n)
	for i := range recs {
		recs[i] = gen.Next()
	}

	type row struct {
		k     int
		times []time.Duration
		got   []int
	}
	rows := make([]row, 0, len(ks))
	for _, k := range ks {
		start := time.Now()
		v, err := sampleview.CreateSharded("", recs, sampleview.ShardedOptions{
			K: k, Seed: seed, Parallelism: parallelism,
		})
		if err != nil {
			return err
		}
		r := row{k: k}
		qg := workload.NewQueryGen(seed)
		for _, sel := range shardBenchSelectivities {
			q := qg.Range1D(sel)
			s, err := v.Query(q)
			if err != nil {
				v.Close()
				return err
			}
			batch, err := s.Sample(shardBenchTarget)
			if err != nil {
				v.Close()
				return err
			}
			r.times = append(r.times, s.SimNow())
			r.got = append(r.got, len(batch))
			s.Close()
		}
		v.Close()
		rows = append(rows, r)
		fmt.Fprintf(os.Stderr, "svbench: shards=%d done in %v (wall)\n", k, time.Since(start).Round(time.Millisecond))
	}

	// TSV block: simulated time per selectivity, then speedup vs the first
	// listed shard count.
	fmt.Printf("# Shard scaling: simulated time to first %d online samples (n=%d, seed=%d)\n", shardBenchTarget, n, seed)
	fmt.Printf("shards")
	for _, sel := range shardBenchSelectivities {
		fmt.Printf("\tsel=%g", sel)
	}
	for _, sel := range shardBenchSelectivities {
		fmt.Printf("\tspeedup@%g", sel)
	}
	fmt.Println()
	base := rows[0]
	for _, r := range rows {
		fmt.Printf("%d", r.k)
		for _, d := range r.times {
			fmt.Printf("\t%v", d)
		}
		for i := range r.times {
			fmt.Printf("\t%.2f", float64(base.times[i])/float64(r.times[i]))
		}
		fmt.Println()
	}

	if out == "" {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Shard scaling: time to first %d online samples\n\n", shardBenchTarget)
	fmt.Fprintf(&b, "One relation of %d records, partitioned by insertion-sequence hash across K "+
		"simulated disks (seed %d). Each cell is the *simulated* disk time until the merged "+
		"K-way stream has delivered its first %d samples (or the full matching set, for the "+
		"narrow selectivity) — shards read their leaves on separate spindles concurrently, so "+
		"the stream's clock is the slowest shard's, and the time falls near-linearly with K "+
		"until per-shard leaf reads stop dominating.\n\n", n, seed, shardBenchTarget)
	fmt.Fprintf(&b, "| shards |")
	for _, sel := range shardBenchSelectivities {
		fmt.Fprintf(&b, " sel %g |", sel)
	}
	for _, sel := range shardBenchSelectivities {
		fmt.Fprintf(&b, " speedup @ %g |", sel)
	}
	fmt.Fprintf(&b, "\n|---|")
	for range shardBenchSelectivities {
		fmt.Fprintf(&b, "---|")
	}
	for range shardBenchSelectivities {
		fmt.Fprintf(&b, "---|")
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d |", r.k)
		for _, d := range r.times {
			fmt.Fprintf(&b, " %v |", d.Round(time.Microsecond))
		}
		for i := range r.times {
			fmt.Fprintf(&b, " %.2fx |", float64(base.times[i])/float64(r.times[i]))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "\nSamples delivered per cell: ")
	for i, sel := range shardBenchSelectivities {
		if i > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "%d @ sel %g", rows[0].got[i], sel)
	}
	fmt.Fprintf(&b, " (capped by the matching set when the predicate is narrow).\n")
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "svbench: report written to %s\n", out)
	return nil
}

func generateOn(wb *figures.Workbench, id string) (*figures.Figure, error) {
	switch id {
	case "11":
		return figures.Fig1DOn(wb, "11", 0.0025, 0.04)
	case "12":
		return figures.Fig1DOn(wb, "12", 0.025, 0.04)
	case "13":
		return figures.Fig1DOn(wb, "13", 0.25, 0.04)
	case "14":
		return figures.Fig14On(wb)
	case "15a":
		return figures.Fig15On(wb, "15a", 0.0025)
	case "15b":
		return figures.Fig15On(wb, "15b", 0.025)
	case "16":
		return figures.Fig2DOn(wb, "16", 0.0025, 0.05)
	case "17":
		return figures.Fig2DOn(wb, "17", 0.025, 0.05)
	case "18":
		return figures.Fig2DOn(wb, "18", 0.25, 0.05)
	default:
		return nil, fmt.Errorf("unknown figure %q", id)
	}
}

func printFigure(fig *figures.Figure) {
	fmt.Printf("# Figure %s: %s\n", fig.ID, fig.Title)
	fmt.Printf("# x: %s | y: %s\n", fig.XLabel, fig.YLabel)
	fmt.Printf("x")
	for _, s := range fig.Series {
		fmt.Printf("\t%s", s.Name)
	}
	fmt.Println()
	if len(fig.Series) == 0 {
		return
	}
	for i := range fig.Series[0].X {
		fmt.Printf("%.4f", fig.Series[0].X[i])
		for _, s := range fig.Series {
			fmt.Printf("\t%.6f", s.Y[i])
		}
		fmt.Println()
	}
	fmt.Println()
}
