// Command svbench regenerates the figures of the paper's evaluation and
// prints each series as TSV.
//
// Usage:
//
//	svbench -fig all                # every figure at default scale
//	svbench -fig 11,12,13 -n 2000000
//	svbench -fig 16 -n 4000000      # 2-d figures discriminate at larger N
//
// Output: one block per figure, tab-separated; the first column is the
// x-axis (% of the time required to scan the relation), followed by one
// column per method (% of the relation's records retrieved; a fraction for
// Figure 15).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sampleview/internal/figures"
)

func main() {
	var (
		figList  = flag.String("fig", "all", "comma-separated figure ids ("+strings.Join(figures.IDs(), ",")+") or 'all'")
		n        = flag.Int64("n", 0, "records in the SALE relation (0 = default 1M)")
		queries  = flag.Int("queries", 0, "queries averaged per figure (0 = default 10)")
		seed     = flag.Uint64("seed", 2006, "experiment seed")
		grid     = flag.Int("grid", 0, "x-axis grid points (0 = default 160)")
		pool     = flag.Int("pool", 0, "buffer pool pages for rank-based samplers (0 = auto)")
		pageSize = flag.Int("pagesize", 8192, "disk page size in bytes (smaller pages refine leaf granularity)")
		physical = flag.Bool("physical", false, "charge the raw disk model instead of the scale-matched one")
		parallel = flag.Int("par", 0, "worker goroutines for builds and per-figure queries (0 or 1 = sequential)")
	)
	flag.Parse()

	cfg := figures.DefaultConfig()
	cfg.Physical = *physical
	cfg.Parallel = *parallel
	if *pageSize > 0 {
		m := cfg.Model
		// Keep the sequential transfer rate (~53 MB/s) of the paper's
		// testbed at the chosen page size.
		m.SequentialRead = time.Duration(float64(m.SequentialRead) * float64(*pageSize) / float64(m.PageSize))
		m.SequentialWrite = m.SequentialRead
		m.PageSize = *pageSize
		cfg.Model = m
		// Keep the external sorts' memory budget at ~16 MB regardless of
		// page size so construction does not degenerate into many-pass
		// merges with small pages.
		if mem := 16 << 20 / *pageSize; mem > cfg.MemPages {
			cfg.MemPages = mem
		}
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.Seed = *seed
	if *grid > 0 {
		cfg.GridPoints = *grid
	}
	if *pool > 0 {
		cfg.PoolPages = *pool
	}

	ids := figures.IDs()
	if *figList != "all" {
		ids = strings.Split(*figList, ",")
	}

	// Group figures by dimensionality so the expensive workbench builds
	// are shared.
	var oneD, twoD []string
	for _, id := range ids {
		switch id {
		case "11", "12", "13", "14", "15a", "15b":
			oneD = append(oneD, id)
		case "16", "17", "18":
			twoD = append(twoD, id)
		default:
			fmt.Fprintf(os.Stderr, "svbench: unknown figure %q\n", id)
			os.Exit(2)
		}
	}

	run := func(dims int, ids []string) {
		if len(ids) == 0 {
			return
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "svbench: building %d-d workbench (n=%d)...\n", dims, cfg.N)
		wb, err := figures.NewWorkbench(cfg, dims)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "svbench: workbench ready in %v (scan time %v)\n",
			time.Since(start).Round(time.Millisecond), wb.ScanTime)
		for _, id := range ids {
			start := time.Now()
			fig, err := generateOn(wb, id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svbench: figure %s: %v\n", id, err)
				os.Exit(1)
			}
			printFigure(fig)
			fmt.Fprintf(os.Stderr, "svbench: figure %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	run(1, oneD)
	run(2, twoD)
}

func generateOn(wb *figures.Workbench, id string) (*figures.Figure, error) {
	switch id {
	case "11":
		return figures.Fig1DOn(wb, "11", 0.0025, 0.04)
	case "12":
		return figures.Fig1DOn(wb, "12", 0.025, 0.04)
	case "13":
		return figures.Fig1DOn(wb, "13", 0.25, 0.04)
	case "14":
		return figures.Fig14On(wb)
	case "15a":
		return figures.Fig15On(wb, "15a", 0.0025)
	case "15b":
		return figures.Fig15On(wb, "15b", 0.025)
	case "16":
		return figures.Fig2DOn(wb, "16", 0.0025, 0.05)
	case "17":
		return figures.Fig2DOn(wb, "17", 0.025, 0.05)
	case "18":
		return figures.Fig2DOn(wb, "18", 0.25, 0.05)
	default:
		return nil, fmt.Errorf("unknown figure %q", id)
	}
}

func printFigure(fig *figures.Figure) {
	fmt.Printf("# Figure %s: %s\n", fig.ID, fig.Title)
	fmt.Printf("# x: %s | y: %s\n", fig.XLabel, fig.YLabel)
	fmt.Printf("x")
	for _, s := range fig.Series {
		fmt.Printf("\t%s", s.Name)
	}
	fmt.Println()
	if len(fig.Series) == 0 {
		return
	}
	for i := range fig.Series[0].X {
		fmt.Printf("%.4f", fig.Series[0].X[i])
		for _, s := range fig.Series {
			fmt.Printf("\t%.6f", s.Y[i])
		}
		fmt.Println()
	}
	fmt.Println()
}
