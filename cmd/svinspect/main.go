// Command svinspect prints the structure and statistics of a sample view
// file and optionally runs a deep integrity check.
//
// Usage:
//
//	svinspect -view sale.view
//	svinspect -view sale.view -verify
//	svinspect -catalog /data/svcat [-verify]
//
// With -catalog it walks a sharded view catalog's manifest instead: every
// registered view is listed with its shard layout and health, and -verify
// checksum-scrubs every shard of every view, reporting the per-shard fsck
// I/O cost (pages read, simulated time) alongside any damage found.
package main

import (
	"flag"
	"fmt"
	"os"

	"sampleview/internal/catalog"
	"sampleview/internal/core"
	"sampleview/internal/iosim"
	"sampleview/internal/pagefile"
	"sampleview/internal/shard"
)

func main() {
	var (
		view       = flag.String("view", "", "view file to inspect")
		catalogDir = flag.String("catalog", "", "catalog directory to walk instead of a single view file")
		verify     = flag.Bool("verify", false, "run the deep integrity check (full scan)")
	)
	flag.Parse()
	if (*view == "") == (*catalogDir == "") {
		fmt.Fprintln(os.Stderr, "svinspect: exactly one of -view or -catalog is required")
		flag.Usage()
		os.Exit(2)
	}
	if *catalogDir != "" {
		inspectCatalog(*catalogDir, *verify)
		return
	}

	sim := iosim.New(iosim.DefaultModel())
	f, err := pagefile.Open(sim, *view)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svinspect: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	t, err := core.Open(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svinspect: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("view:            %s\n", *view)
	fmt.Printf("records:         %d\n", t.Count())
	fmt.Printf("dimensions:      %d\n", t.Dims())
	fmt.Printf("height:          %d (sections per leaf)\n", t.Height())
	fmt.Printf("leaves:          %d\n", t.NumLeaves())
	fmt.Printf("data pages:      %d (%d-byte pages)\n", t.DataPages(), f.PageSize())
	fmt.Printf("mean section mu: %.2f records\n", t.MeanSectionSize())
	fmt.Printf("data bounds:     %v\n", t.DataBounds())

	st := t.LeafStats()
	fmt.Printf("leaf records:    mean %.1f, std %.1f, max %d\n",
		st.MeanRecords, st.StdRecords, st.MaxRecords)
	fmt.Printf("leaf space util: %.1f%% (variable scheme)\n", st.VariableUtilization*100)

	fmt.Printf("section totals:  ")
	for s, n := range t.SectionHistogram() {
		if s > 0 {
			fmt.Printf(" ")
		}
		fmt.Printf("S%d=%d", s+1, n)
	}
	fmt.Println()

	if *verify {
		// Pass 1: page checksums. The scan inspects what is actually on
		// disk, mapping each mismatch to the region — and for leaf pages,
		// the leaf and sections — it damages.
		fmt.Printf("checksums...     ")
		if !f.Checksummed() {
			fmt.Printf("skipped (legacy v1 file carries no page checksums)\n")
		} else {
			faults, err := t.FsckPages()
			if err != nil {
				fmt.Printf("FAILED\n%v\n", err)
				os.Exit(1)
			}
			if len(faults) > 0 {
				fmt.Printf("FAILED (%d corrupt pages)\n", len(faults))
				for _, pf := range faults {
					fmt.Printf("  %s\n", pf)
				}
				os.Exit(1)
			}
			fmt.Printf("ok (%d pages verified)\n", f.NumPages())
		}

		// Pass 2: structural invariants.
		fmt.Printf("verifying...     ")
		before, t0 := sim.Counters(), sim.Now()
		if err := t.Verify(); err != nil {
			fmt.Printf("FAILED\n%v\n", err)
			os.Exit(1)
		}
		after := sim.Counters()
		fmt.Printf("ok (all invariants hold)\n")
		fmt.Printf("verify cost:     %d pages read (%d sequential, %d random), %v simulated\n",
			after.Reads()-before.Reads(),
			after.SequentialReads-before.SequentialReads,
			after.RandomReads-before.RandomReads,
			sim.Now()-t0)
	}
}

// inspectCatalog walks a catalog's manifest, printing each registered
// view's layout and health; with verify it checksum-scrubs every shard and
// reports the per-shard fsck I/O cost. Exits non-zero on detected damage.
func inspectCatalog(dir string, verify bool) {
	cat, err := catalog.New(dir, shard.Options{}, catalog.Policy{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svinspect: %v\n", err)
		os.Exit(1)
	}
	defer cat.Close()

	infos := cat.List()
	fmt.Printf("catalog:         %s (%d views)\n", dir, len(infos))
	damaged := false
	for _, info := range infos {
		fmt.Printf("\nview %s\n", info.Name)
		fmt.Printf("  shards:        %d (%s partitioning)\n", info.K, info.Partition)
		fmt.Printf("  records:       %d (%d appends pending)\n", info.Count, info.PendingAppends)
		fmt.Printf("  health:        %s\n", info.Health)
		w := info.Write
		fmt.Printf("  write path:    %d buffered + %d tombstones in memview, %d delta records across %d level(s), %d tombstones pending\n",
			w.MemViewRecords, w.MemViewTombstones, w.DeltaRecords, info.DeltaLevels, w.TombstonesPending)
		fmt.Printf("  maintenance:   %d flushes, %d compactions\n", w.Flushes, w.Compactions)
		v, ok := cat.Get(info.Name)
		if !ok {
			continue
		}
		for i, n := range v.ShardCounts() {
			fmt.Printf("  shard %-4d     %d records\n", i, n)
		}
		if !verify {
			continue
		}
		reports, err := v.Fsck()
		if err != nil {
			fmt.Fprintf(os.Stderr, "svinspect: %v\n", err)
			os.Exit(1)
		}
		for _, r := range reports {
			verdict := "ok"
			if len(r.Faults) > 0 {
				verdict = fmt.Sprintf("%d CORRUPT PAGES", len(r.Faults))
				damaged = true
			}
			fmt.Printf("  fsck shard %-3d %s (%d pages read, %v simulated)\n",
				r.Shard, verdict, r.Reads, r.Cost)
			for _, pf := range r.Faults {
				fmt.Printf("    %s\n", pf)
			}
		}
	}
	if damaged {
		os.Exit(1)
	}
}
