// Command svinspect prints the structure and statistics of a sample view
// file and optionally runs a deep integrity check.
//
// Usage:
//
//	svinspect -view sale.view
//	svinspect -view sale.view -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"sampleview/internal/core"
	"sampleview/internal/iosim"
	"sampleview/internal/pagefile"
)

func main() {
	var (
		view   = flag.String("view", "", "view file to inspect (required)")
		verify = flag.Bool("verify", false, "run the deep integrity check (full scan)")
	)
	flag.Parse()
	if *view == "" {
		fmt.Fprintln(os.Stderr, "svinspect: -view is required")
		flag.Usage()
		os.Exit(2)
	}

	sim := iosim.New(iosim.DefaultModel())
	f, err := pagefile.Open(sim, *view)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svinspect: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	t, err := core.Open(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svinspect: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("view:            %s\n", *view)
	fmt.Printf("records:         %d\n", t.Count())
	fmt.Printf("dimensions:      %d\n", t.Dims())
	fmt.Printf("height:          %d (sections per leaf)\n", t.Height())
	fmt.Printf("leaves:          %d\n", t.NumLeaves())
	fmt.Printf("data pages:      %d (%d-byte pages)\n", t.DataPages(), f.PageSize())
	fmt.Printf("mean section mu: %.2f records\n", t.MeanSectionSize())
	fmt.Printf("data bounds:     %v\n", t.DataBounds())

	st := t.LeafStats()
	fmt.Printf("leaf records:    mean %.1f, std %.1f, max %d\n",
		st.MeanRecords, st.StdRecords, st.MaxRecords)
	fmt.Printf("leaf space util: %.1f%% (variable scheme)\n", st.VariableUtilization*100)

	fmt.Printf("section totals:  ")
	for s, n := range t.SectionHistogram() {
		if s > 0 {
			fmt.Printf(" ")
		}
		fmt.Printf("S%d=%d", s+1, n)
	}
	fmt.Println()

	if *verify {
		// Pass 1: page checksums. The scan inspects what is actually on
		// disk, mapping each mismatch to the region — and for leaf pages,
		// the leaf and sections — it damages.
		fmt.Printf("checksums...     ")
		if !f.Checksummed() {
			fmt.Printf("skipped (legacy v1 file carries no page checksums)\n")
		} else {
			faults, err := t.FsckPages()
			if err != nil {
				fmt.Printf("FAILED\n%v\n", err)
				os.Exit(1)
			}
			if len(faults) > 0 {
				fmt.Printf("FAILED (%d corrupt pages)\n", len(faults))
				for _, pf := range faults {
					fmt.Printf("  %s\n", pf)
				}
				os.Exit(1)
			}
			fmt.Printf("ok (%d pages verified)\n", f.NumPages())
		}

		// Pass 2: structural invariants.
		fmt.Printf("verifying...     ")
		before, t0 := sim.Counters(), sim.Now()
		if err := t.Verify(); err != nil {
			fmt.Printf("FAILED\n%v\n", err)
			os.Exit(1)
		}
		after := sim.Counters()
		fmt.Printf("ok (all invariants hold)\n")
		fmt.Printf("verify cost:     %d pages read (%d sequential, %d random), %v simulated\n",
			after.Reads()-before.Reads(),
			after.SequentialReads-before.SequentialReads,
			after.RandomReads-before.RandomReads,
			sim.Now()-t0)
	}
}
