// Command svload is a closed-loop load generator for svserve: N concurrent
// clients each open sample streams for randomized range predicates of mixed
// selectivity, pull batches until a per-query sample budget is met, and
// verify on the fly that every delivered prefix is a plausible uniform
// without-replacement sample (no duplicates, every record inside the
// predicate). With -check it additionally cross-checks each stream
// record-for-record against an in-process stream over the same view file,
// which must agree exactly since core streams are deterministic given the
// stored view.
//
// With -writers the workload turns mixed: that many writer connections
// append fresh records, tombstone a slice of what they appended, and flush,
// racing the readers for the run's whole duration. The readers' on-the-fly
// verification keeps holding — every delivered prefix must stay duplicate-
// free and inside the predicate while memview flushes and delta compactions
// run underneath. Backlog rejections are absorbed by flushing and retrying.
// -writers is incompatible with -check (the served view diverges from the
// static check file as soon as the first append lands).
//
// With -tenants N the clients spread round-robin across N tenant
// identities (declared via set-tenant before the first stream), so the
// server's — or a fleet router's — per-tenant admission and accounting are
// exercised, and the report breaks latency percentiles down per tenant.
//
// Usage:
//
//	svload -connect 127.0.0.1:7070 -view sale -clients 64 -ops 10 \
//	       -samples 2000 -check sale.view -out results/serve-bench.md
//	svload -connect 127.0.0.1:7070 -view sale -clients 16 -writers 4
//	svload -connect 127.0.0.1:7000 -view sale -clients 32 -tenants 8
//
// Throughput and open/batch latency percentiles are printed and, with
// -out, appended as a markdown report.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sampleview"
	"sampleview/internal/record"
	"sampleview/internal/server"
	"sampleview/internal/workload"
)

// selectivities are the paper's evaluation mix: 0.25%, 2.5% and 25% range
// predicates, cycled per operation.
var selectivities = []float64{0.0025, 0.025, 0.25}

type clientResult struct {
	tenant     string
	ops        int
	records    int64
	openLat    []time.Duration
	batchLat   []time.Duration
	ttf        []time.Duration // wall time from first pull to wallTarget samples
	rejections int
	failures   []string
}

// wallTarget is the sample count whose wall-clock delivery time -wall
// reports: the serving-path counterpart of svbench -wall's ttf-1000.
const wallTarget = 1000

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:7070", "server address")
		view    = flag.String("view", "sale", "served view name")
		clients = flag.Int("clients", 64, "concurrent client connections")
		ops     = flag.Int("ops", 10, "queries per client")
		samples = flag.Int("samples", 2000, "sample budget per query")
		batch   = flag.Int("batch", 256, "records per batch pull")
		seed    = flag.Uint64("seed", 1, "workload seed")
		check   = flag.String("check", "", "view file for exact record-for-record cross-checking")
		out     = flag.String("out", "", "append a markdown report to this file")
		wall    = flag.Bool("wall", false, "report wall-clock time-to-first-1000 per query")
		writers = flag.Int("writers", 0, "concurrent writer connections appending/deleting/flushing for the run's duration")
		wbatch  = flag.Int("write-batch", 128, "records per append batch")
		tenants = flag.Int("tenants", 0, "spread clients round-robin across this many tenant identities (0 = untenanted)")
	)
	flag.Parse()
	if *writers > 0 && *check != "" {
		fmt.Fprintln(os.Stderr, "svload: -writers is incompatible with -check (the served view mutates under the workload)")
		os.Exit(2)
	}

	// Probe the server once for view metadata before unleashing the fleet.
	probe, err := server.Dial(*connect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svload: %v\n", err)
		os.Exit(1)
	}
	pv, err := probe.OpenView(*view)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svload: %v\n", err)
		os.Exit(1)
	}
	dims := pv.Dims()
	fmt.Printf("view %q: %d records, %d dims; %d clients x %d ops x %d samples\n",
		*view, pv.Count(), dims, *clients, *ops, *samples)

	results := make([]clientResult, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	var live, peak atomic.Int64
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		tenant := ""
		if *tenants > 0 {
			tenant = fmt.Sprintf("tenant-%02d", c%*tenants)
		}
		go func(c int, tenant string) {
			defer wg.Done()
			results[c] = runClient(*connect, *view, *check, tenant, dims,
				*seed+uint64(c)*1000003, *ops, *samples, *batch, &live, &peak)
		}(c, tenant)
	}

	// Writers race the readers for the whole run, stopping when the last
	// reader finishes.
	stop := make(chan struct{})
	wresults := make([]writerResult, *writers)
	var wwg sync.WaitGroup
	for w := 0; w < *writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			wresults[w] = runWriter(*connect, *view, w,
				*seed+uint64(w)*6700417, *wbatch, stop)
		}(w)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	elapsed := time.Since(start)

	var wtotal writerResult
	for _, r := range wresults {
		wtotal.appended += r.appended
		wtotal.deleted += r.deleted
		wtotal.flushes += r.flushes
		wtotal.rejections += r.rejections
		wtotal.failures = append(wtotal.failures, r.failures...)
	}

	// Aggregate, overall and per tenant identity.
	var total clientResult
	perTenant := map[string]*clientResult{}
	for _, r := range results {
		total.ops += r.ops
		total.records += r.records
		total.rejections += r.rejections
		total.openLat = append(total.openLat, r.openLat...)
		total.batchLat = append(total.batchLat, r.batchLat...)
		total.ttf = append(total.ttf, r.ttf...)
		total.failures = append(total.failures, r.failures...)
		if r.tenant != "" {
			tr := perTenant[r.tenant]
			if tr == nil {
				tr = &clientResult{tenant: r.tenant}
				perTenant[r.tenant] = tr
			}
			tr.ops += r.ops
			tr.records += r.records
			tr.rejections += r.rejections
			tr.openLat = append(tr.openLat, r.openLat...)
			tr.batchLat = append(tr.batchLat, r.batchLat...)
		}
	}
	snap, err := probe.ServerStats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "svload: fetching server stats: %v\n", err)
		os.Exit(1)
	}
	probe.Close()

	total.failures = append(total.failures, wtotal.failures...)
	report := buildReport(*connect, *view, *clients, *ops, *samples, *batch, *seed,
		*check != "", *wall, int(peak.Load()), elapsed, &total, perTenant, *writers, &wtotal, snap)
	fmt.Print(report)
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprint(f, report)
		f.Close()
		fmt.Printf("report appended to %s\n", *out)
	}
	if len(total.failures) > 0 {
		os.Exit(1)
	}
}

// writerResult aggregates one writer connection's activity.
type writerResult struct {
	appended   int64
	deleted    int64
	flushes    int64
	rejections int64 // backlog rejections absorbed by flushing and retrying
	failures   []string
}

// runWriter drives one writer connection until stop closes: append a fresh
// batch, tombstone the first half of every third batch, flush every fifth
// iteration, and absorb backlog rejections by flushing and retrying. Each
// writer owns a disjoint Seq range, so appended records never collide and a
// deleted Seq is never reinserted.
func runWriter(addr, view string, id int, seed uint64, batchSize int, stop <-chan struct{}) writerResult {
	var res writerResult
	fail := func(format string, args ...any) {
		res.failures = append(res.failures, fmt.Sprintf("writer %d: %s", id, fmt.Sprintf(format, args...)))
	}
	cl, err := server.Dial(addr)
	if err != nil {
		fail("dial: %v", err)
		return res
	}
	defer cl.Close()
	rv, err := cl.OpenView(view)
	if err != nil {
		fail("open view: %v", err)
		return res
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	const domain = 1 << 20
	seq := uint64(id+1) << 40
	for iter := 0; ; iter++ {
		select {
		case <-stop:
			return res
		default:
		}
		batch := make([]record.Record, batchSize)
		for i := range batch {
			batch[i] = record.Record{Key: rng.Int64N(domain), Amount: rng.Int64N(domain), Seq: seq}
			seq++
		}
		for {
			n, err := rv.Append(batch)
			if err == nil {
				res.appended += int64(n)
				break
			}
			if server.IsWriteReject(err) {
				res.rejections++
				if _, ferr := rv.Flush(); ferr != nil {
					fail("flush under backlog: %v", ferr)
					return res
				}
				res.flushes++
				continue
			}
			fail("append: %v", err)
			return res
		}
		if iter%3 == 2 {
			if n, err := rv.Delete(batch[:len(batch)/2]); err != nil {
				fail("delete: %v", err)
				return res
			} else {
				res.deleted += int64(n)
			}
		}
		if iter%5 == 4 {
			if _, err := rv.Flush(); err != nil {
				fail("flush: %v", err)
				return res
			}
			res.flushes++
		}
	}
}

// runClient drives one connection through its operations. A non-empty
// tenant is declared to the server before any stream opens, so admission
// and accounting run under that identity.
func runClient(addr, view, check, tenant string, dims int, seed uint64, ops, samples, batchSize int,
	live, peak *atomic.Int64) clientResult {
	res := clientResult{tenant: tenant}
	fail := func(format string, args ...any) {
		res.failures = append(res.failures, fmt.Sprintf(format, args...))
	}
	cl, err := server.Dial(addr)
	if err != nil {
		fail("dial: %v", err)
		return res
	}
	defer cl.Close()
	if tenant != "" {
		if err := cl.SetTenant(tenant); err != nil {
			fail("set tenant %q: %v", tenant, err)
			return res
		}
	}
	rv, err := cl.OpenView(view)
	if err != nil {
		fail("open view: %v", err)
		return res
	}
	var lv *sampleview.View
	if check != "" {
		if lv, err = sampleview.Open(check, sampleview.Options{}); err != nil {
			fail("open check view: %v", err)
			return res
		}
		defer lv.Close()
	}
	qg := workload.NewQueryGen(seed)
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))

	for op := 0; op < ops; op++ {
		sel := selectivities[op%len(selectivities)]
		var q record.Box
		if dims >= 2 {
			q = qg.Box2D(sel)
		} else {
			q = qg.Range1D(sel)
		}

		// Open the stream, retrying briefly on admission rejections so a
		// saturated server degrades to queueing, not errors.
		var s *server.RemoteStream
		t0 := time.Now()
		for attempt := 0; ; attempt++ {
			s, err = rv.Query(q)
			if err == nil {
				break
			}
			if server.IsAdmissionReject(err) && attempt < 50 {
				res.rejections++
				time.Sleep(time.Duration(1+rng.Int64N(4)) * time.Millisecond)
				continue
			}
			fail("op %d: open stream: %v", op, err)
			return res
		}
		res.openLat = append(res.openLat, time.Since(t0))
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		s.SetBatchSize(batchSize)

		var local *sampleview.Stream
		if lv != nil {
			if local, err = lv.Query(q); err != nil {
				fail("op %d: local stream: %v", op, err)
				live.Add(-1)
				return res
			}
		}
		seen := make(map[uint64]struct{}, samples)
		got := 0
		pullStart := time.Now()
		ttfDone := false
		for got < samples {
			t1 := time.Now()
			recs, err := s.NextBatch()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail("op %d: next batch: %v", op, err)
				break
			}
			res.batchLat = append(res.batchLat, time.Since(t1))
			for i := range recs {
				if !q.ContainsRecord(&recs[i]) {
					fail("op %d: record seq %d outside the predicate", op, recs[i].Seq)
				}
				if _, dup := seen[recs[i].Seq]; dup {
					fail("op %d: duplicate seq %d (not without-replacement)", op, recs[i].Seq)
				}
				seen[recs[i].Seq] = struct{}{}
				if local != nil {
					want, lerr := local.Next()
					if lerr != nil {
						fail("op %d: local stream ended early: %v", op, lerr)
					} else if want != recs[i] {
						fail("op %d: record %d diverges from the in-process stream (remote seq %d, local seq %d)",
							op, got+i, recs[i].Seq, want.Seq)
					}
				}
			}
			got += len(recs)
			if !ttfDone && got >= min(wallTarget, samples) {
				res.ttf = append(res.ttf, time.Since(pullStart))
				ttfDone = true
			}
		}
		if !ttfDone {
			// The predicate exhausted below the target; the full matching
			// set arrived in this time.
			res.ttf = append(res.ttf, time.Since(pullStart))
		}
		res.records += int64(got)
		res.ops++
		s.Close()
		live.Add(-1)
	}
	return res
}

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	i := int(p * float64(len(lat)-1))
	return lat[i]
}

func latRow(name string, lat []time.Duration) string {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return fmt.Sprintf("| %s | %d | %v | %v | %v | %v |\n", name, len(lat),
		percentile(lat, 0.50).Round(time.Microsecond),
		percentile(lat, 0.90).Round(time.Microsecond),
		percentile(lat, 0.99).Round(time.Microsecond),
		percentile(lat, 1.0).Round(time.Microsecond))
}

func buildReport(addr, view string, clients, ops, samples, batch int, seed uint64,
	checked, wall bool, peak int, elapsed time.Duration, total *clientResult,
	perTenant map[string]*clientResult,
	writers int, wtotal *writerResult, snap *server.StatsSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n## svload run: %d clients against %s\n\n", clients, addr)
	fmt.Fprintf(&b, "- view `%s`, %d ops/client, %d samples/op, batches of %d, seed %d\n",
		view, ops, samples, batch, seed)
	fmt.Fprintf(&b, "- selectivity mix: 0.25%% / 2.5%% / 25%% range predicates (paper's evaluation mix)\n")
	fmt.Fprintf(&b, "- peak concurrent streams observed by the generator: %d\n", peak)
	if checked {
		fmt.Fprintf(&b, "- every record cross-checked against an in-process stream over the same view file\n")
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| wall time | %v |\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "| completed queries | %d |\n", total.ops)
	fmt.Fprintf(&b, "| records delivered | %d |\n", total.records)
	fmt.Fprintf(&b, "| records/sec | %.0f |\n", float64(total.records)/elapsed.Seconds())
	fmt.Fprintf(&b, "| queries/sec | %.1f |\n", float64(total.ops)/elapsed.Seconds())
	fmt.Fprintf(&b, "| admission rejections (retried) | %d |\n", total.rejections)
	if writers > 0 {
		fmt.Fprintf(&b, "| writers | %d |\n", writers)
		fmt.Fprintf(&b, "| records appended | %d |\n", wtotal.appended)
		fmt.Fprintf(&b, "| records deleted | %d |\n", wtotal.deleted)
		fmt.Fprintf(&b, "| flushes | %d |\n", wtotal.flushes)
		fmt.Fprintf(&b, "| backlog rejections (retried) | %d |\n", wtotal.rejections)
		fmt.Fprintf(&b, "| ingest records/sec | %.0f |\n", float64(wtotal.appended)/elapsed.Seconds())
	}
	fmt.Fprintf(&b, "| correctness failures | %d |\n", len(total.failures))
	fmt.Fprintf(&b, "\n| latency | n | p50 | p90 | p99 | max |\n|---|---|---|---|---|---|\n")
	b.WriteString(latRow("open-stream", total.openLat))
	b.WriteString(latRow("next-batch", total.batchLat))
	if wall {
		b.WriteString(latRow(fmt.Sprintf("ttf-%d (wall)", wallTarget), total.ttf))
	}
	if len(perTenant) > 0 {
		names := make([]string, 0, len(perTenant))
		for name := range perTenant {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "\nPer-tenant breakdown (%d tenants):\n", len(names))
		fmt.Fprintf(&b, "\n| tenant | queries | records | rejections | batch p50 | batch p99 | open p99 |\n|---|---|---|---|---|---|---|\n")
		for _, name := range names {
			tr := perTenant[name]
			sort.Slice(tr.batchLat, func(i, j int) bool { return tr.batchLat[i] < tr.batchLat[j] })
			sort.Slice(tr.openLat, func(i, j int) bool { return tr.openLat[i] < tr.openLat[j] })
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %v | %v | %v |\n",
				name, tr.ops, tr.records, tr.rejections,
				percentile(tr.batchLat, 0.50).Round(time.Microsecond),
				percentile(tr.batchLat, 0.99).Round(time.Microsecond),
				percentile(tr.openLat, 0.99).Round(time.Microsecond))
		}
	}
	fmt.Fprintf(&b, "\nServer counters after the run:\n\n```\n")
	snap.Dump(&b)
	fmt.Fprintf(&b, "```\n")
	for i, f := range total.failures {
		if i == 0 {
			fmt.Fprintf(&b, "\nFAILURES:\n")
		}
		if i == 20 {
			fmt.Fprintf(&b, "- ... and %d more\n", len(total.failures)-20)
			break
		}
		fmt.Fprintf(&b, "- %s\n", f)
	}
	return b.String()
}
