// Command svserve serves materialized sample views over TCP: clients open
// online sample streams, pull batches whose every prefix is a uniform
// without-replacement sample, and run count estimates, all multiplexed over
// concurrent sessions with admission control.
//
// Usage:
//
//	svserve -listen :7070 -view sale=sale.view -view day2=day2.view
//	svserve -listen :7070 -catalog /data/svcat
//
// With -catalog the server hosts a sharded view catalog: clients list and
// open its views by name, and the catalog's background maintenance
// (compaction past -compact-threshold pending appends, checksum scrubs
// every -scrub-every of simulated time) runs in the idle gaps between
// request bursts.
//
// SIGINT/SIGTERM triggers a graceful shutdown: in-flight batches finish
// writing before their connections close, and the final server statistics
// are printed on exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sampleview"
	"sampleview/internal/server"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		maxStreams  = flag.Int("max-streams", 256, "server-wide cap on open streams")
		connStreams = flag.Int("conn-streams", 16, "per-connection cap on open streams")
		tenStreams  = flag.Int("tenant-streams", 0, "per-tenant cap on open streams, summed across connections (0 = -max-streams)")
		replicaID   = flag.String("replica-id", "", "name this server in a fleet (reported via replica-info)")
		maxBatch    = flag.Int("max-batch", 4096, "cap on records per batch response")
		idle        = flag.Duration("idle", 0, "reap streams idle this long on the simulated disk clock (0 = never)")
		reqTimeout  = flag.Duration("req-timeout", 0, "wall-clock deadline per in-flight request (0 = none)")
		profile     = flag.String("fault-profile", "", "inject storage faults on every served view: "+strings.Join(sampleview.FaultProfiles(), ", "))
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for the injected fault schedule")
		backlog     = flag.Int("write-backlog", 0, "reject appends once a view's memview holds this many entries (0 = default 65536)")
		catalogDir  = flag.String("catalog", "", "host the sharded view catalog rooted at this directory")
		compactAt   = flag.Int("compact-threshold", 256, "catalog: full-fold a view once this many appends are pending (0 = never)")
		flushAt     = flag.Int("flush-threshold", 1024, "catalog: flush a view's memview once it holds this many entries (0 = never)")
		maxLevels   = flag.Int("max-delta-levels", 4, "catalog: merge delta levels, forcing past this depth (0 = never)")
		scrubEvery  = flag.Duration("scrub-every", 0, "catalog: checksum-scrub each view at this simulated-time interval (0 = never)")
		backendName = flag.String("backend", "default", "raw-I/O backend for stored view files: pread or mmap")
		prefetch    = flag.Int("prefetch", 0, "async leaf-prefetch workers per opened view file (0 = off)")
		walOn       = flag.Bool("wal", false, "write-ahead-log every served view: appends and deletes are group-committed before the ack and replayed on restart")
		syncEvery   = flag.Int("sync-every", 0, "wal: fsync once at most this many writes accumulate in a commit cohort (1 = every write, 0 = window batching only)")
		groupWindow = flag.Duration("group-commit-window", 0, "wal: how long a group-commit leader waits for more writers before the fsync (0 = none)")
		writeRate   = flag.Float64("write-rate", 0, "per-connection write admission: sustained appended/deleted entries per second (0 = unlimited)")
		writeBurst  = flag.Int("write-burst", 0, "per-connection write admission: token-bucket burst capacity (0 = auto from -write-rate and -max-batch)")
	)
	views := map[string]string{}
	flag.Func("view", "serve a view as name=file.view (repeatable, required)", func(s string) error {
		name, path, ok := strings.Cut(s, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=file.view, got %q", s)
		}
		views[name] = path
		return nil
	})
	flag.Parse()
	if len(views) == 0 && *catalogDir == "" {
		fmt.Fprintln(os.Stderr, "svserve: at least one -view name=file.view (or -catalog dir) is required")
		flag.Usage()
		os.Exit(2)
	}

	var plan sampleview.FaultPlan
	if *profile != "" {
		var err error
		if plan, err = sampleview.FaultProfile(*profile, *faultSeed); err != nil {
			fmt.Fprintf(os.Stderr, "svserve: %v\n", err)
			os.Exit(2)
		}
	}
	backend, err := sampleview.ParseBackendKind(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svserve: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		MaxStreams:          *maxStreams,
		MaxStreamsPerConn:   *connStreams,
		MaxStreamsPerTenant: *tenStreams,
		ReplicaID:           *replicaID,
		MaxBatch:            *maxBatch,
		IdleTimeout:         *idle,
		RequestTimeout:      *reqTimeout,
		MaxWriteBacklog:     *backlog,
		WriteRate:           *writeRate,
		WriteBurst:          *writeBurst,
	})
	for name, path := range views {
		v, err := sampleview.Open(path, sampleview.Options{
			Faults:          plan,
			Backend:         backend,
			PrefetchWorkers: *prefetch,
			WAL:             *walOn,
			WALSyncEvery:    *syncEvery,
			WALGroupWindow:  *groupWindow,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svserve: %v\n", err)
			os.Exit(1)
		}
		defer v.Close()
		srv.AddView(name, v)
		fmt.Printf("serving %-16s %s (%d records, %d dims)\n", name, path, v.Count(), v.Dims())
		if replayed := v.WriteStats().WALReplayed; replayed > 0 {
			fmt.Printf("recovered %-16s %d logged operations replayed\n", name, replayed)
		}
	}
	if *catalogDir != "" {
		cat, err := sampleview.NewCatalog(*catalogDir,
			sampleview.ShardedOptions{
				Faults:          plan,
				Backend:         backend,
				PrefetchWorkers: *prefetch,
				WAL:             *walOn,
				WALSyncEvery:    *syncEvery,
				WALGroupWindow:  *groupWindow,
			},
			sampleview.CatalogPolicy{
				CompactThreshold: *compactAt,
				FlushThreshold:   *flushAt,
				MaxDeltaLevels:   *maxLevels,
				ScrubEvery:       *scrubEvery,
			})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svserve: %v\n", err)
			os.Exit(1)
		}
		defer cat.Close()
		srv.SetCatalog(cat)
		for _, info := range cat.List() {
			fmt.Printf("catalog %-16s %d shards (%s), %d records, health %s\n",
				info.Name, info.K, info.Partition, info.Count, info.Health)
		}
		fmt.Printf("catalog maintenance: flush at %d buffered, merge past %d delta levels, full-fold at %d pending, scrub every %v of simulated time\n",
			*flushAt, *maxLevels, *compactAt, *scrubEvery)
	}
	if *profile != "" {
		fmt.Printf("fault injection: profile %q, seed %d\n", *profile, *faultSeed)
	}
	if *walOn {
		fmt.Printf("durability: wal on (sync-every %d, group-commit window %v)\n", *syncEvery, *groupWindow)
	}
	if *writeRate > 0 {
		fmt.Printf("write admission: %.0f entries/s per connection\n", *writeRate)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s (max %d streams, %d per connection, batches of up to %d)\n",
		ln.Addr(), *maxStreams, *connStreams, *maxBatch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("\n%v: draining...\n", s)
		start := time.Now()
		srv.Shutdown()
		fmt.Printf("drained in %v\n", time.Since(start).Round(time.Millisecond))
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "svserve: %v\n", err)
		os.Exit(1)
	}
	srv.Shutdown() // idempotent; waits if the signal handler is mid-drain
	fmt.Println()
	srv.Snapshot().Dump(os.Stdout)
}
