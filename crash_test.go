package sampleview

import (
	"path/filepath"
	"testing"
)

// crashViewPath creates an on-disk view over n base records with the WAL
// enabled and returns its path plus the open view.
func crashViewPath(t *testing.T, n int) (string, *View, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crash.sv")
	recs := genRecords(n, 11)
	v, err := CreateFromSlice(path, recs, Options{Seed: 5, WAL: true, WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	return path, v, recs
}

// seqSet drains a full-box query and returns the served Seqs, failing on
// any duplicate — the exactly-once recovery criterion.
func seqSet(t *testing.T, v *View) map[uint64]Record {
	t.Helper()
	s, err := v.Query(FullBox(1))
	if err != nil {
		t.Fatal(err)
	}
	recs, degraded := drainFaulty(t, s)
	if degraded != 0 {
		t.Fatalf("stream degraded %d times on a healthy disk", degraded)
	}
	got := make(map[uint64]Record, len(recs))
	for _, rec := range recs {
		if _, dup := got[rec.Seq]; dup {
			t.Fatalf("seq %d served twice: write applied twice during recovery", rec.Seq)
		}
		got[rec.Seq] = rec
	}
	return got
}

// TestCrashRecoveryAckedWritesSurvive cuts power right after a WAL append
// buffers (before any sync) and verifies recovery serves every committed
// write exactly once while the never-acked straggler is gone.
func TestCrashRecoveryAckedWritesSurvive(t *testing.T) {
	const base = 200
	path, v, _ := crashViewPath(t, base)
	acked := make([]Record, 0, 50)
	g := genRecords(51, 23)
	for i := 0; i < 50; i++ {
		rec := g[i]
		rec.Seq = 1<<40 + uint64(i)
		if err := v.Insert(rec); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, rec)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}

	v.InjectCrash(CrashPlan{Point: CrashPostWALAppend})
	straggler := g[50]
	straggler.Seq = 1<<41 + 1
	if err := v.Insert(straggler); !IsCrash(err) {
		t.Fatalf("insert across the power cut returned %v, want a crash error", err)
	}
	if !v.Crashed() {
		t.Fatal("view does not report the cut")
	}
	if err := v.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}

	re, err := Open(path, Options{Seed: 5, WAL: true, WALSyncEvery: 1})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	if got := re.WriteStats().WALReplayed; got != int64(len(acked)) {
		t.Fatalf("replayed %d operations, want %d", got, len(acked))
	}
	got := seqSet(t, re)
	if len(got) != base+len(acked) {
		t.Fatalf("recovered view serves %d records, want %d", len(got), base+len(acked))
	}
	for _, rec := range acked {
		r, ok := got[rec.Seq]
		if !ok {
			t.Fatalf("acked seq %d lost across the crash", rec.Seq)
		}
		if r != rec {
			t.Fatalf("acked seq %d came back as %+v, want %+v", rec.Seq, r, rec)
		}
	}
	if _, ok := got[straggler.Seq]; ok {
		t.Fatal("never-acked write surfaced after recovery")
	}
}

// TestCrashRecoveryDoesNotDoubleApply flushes part of the ingest to a
// durable level before the cut: recovery must replay only the suffix past
// the store's AppliedLSN watermark, never re-applying flushed writes, and
// deletes must stay deleted.
func TestCrashRecoveryDoesNotDoubleApply(t *testing.T) {
	const base = 200
	path, v, _ := crashViewPath(t, base)
	g := genRecords(60, 31)
	for i := 0; i < 30; i++ {
		g[i].Seq = 1<<40 + uint64(i)
		if err := v.Insert(g[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil { // 30 inserts now durable in L0, WAL truncated
		t.Fatal(err)
	}
	for i := 30; i < 60; i++ {
		g[i].Seq = 1<<40 + uint64(i)
		if err := v.Insert(g[i]); err != nil {
			t.Fatal(err)
		}
	}
	victim := g[5] // lives in the durable level; delete it post-flush
	if err := v.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}

	v.InjectCrash(CrashPlan{Point: CrashPostWALAppend})
	extra := Record{Key: 1, Amount: 1, Seq: 1<<41 + 7}
	if err := v.Insert(extra); !IsCrash(err) {
		t.Fatalf("insert across the power cut returned %v, want a crash error", err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Options{Seed: 5, WAL: true, WALSyncEvery: 1})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	// 30 post-flush inserts + 1 delete replay; the 30 flushed inserts sit
	// below the AppliedLSN watermark and must be skipped.
	if got := re.WriteStats().WALReplayed; got != 31 {
		t.Fatalf("replayed %d operations, want 31", got)
	}
	got := seqSet(t, re) // seqSet fails the test on any double-apply
	want := base + 60 - 1
	if len(got) != want {
		t.Fatalf("recovered view serves %d records, want %d", len(got), want)
	}
	if _, ok := got[victim.Seq]; ok {
		t.Fatal("deleted record resurrected by recovery")
	}
	for i := 0; i < 60; i++ {
		if g[i].Seq == victim.Seq {
			continue
		}
		if _, ok := got[g[i].Seq]; !ok {
			t.Fatalf("acked seq %d lost across the crash", g[i].Seq)
		}
	}
}

// TestRecoveredViewKeepsWriting verifies the post-recovery log hands out
// fresh LSNs above the durable watermark: new writes committed after a
// recovery survive a second crash-recovery cycle.
func TestRecoveredViewKeepsWriting(t *testing.T) {
	const base = 100
	path, v, _ := crashViewPath(t, base)
	first := Record{Key: 3, Amount: 9, Seq: 1 << 40}
	if err := v.Insert(first); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil { // durable level, WAL truncated to empty
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Options{Seed: 5, WAL: true, WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	second := Record{Key: 4, Amount: 16, Seq: 1<<40 + 1}
	if err := re.Insert(second); err != nil {
		t.Fatal(err)
	}
	if err := re.Commit(); err != nil {
		t.Fatal(err)
	}
	re.InjectCrash(CrashPlan{Point: CrashPostWALAppend})
	if err := re.Insert(Record{Key: 5, Amount: 25, Seq: 1<<40 + 2}); !IsCrash(err) {
		t.Fatalf("insert across the power cut returned %v, want a crash error", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	fin, err := Open(path, Options{Seed: 5, WAL: true, WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fin.Close()
	got := seqSet(t, fin)
	if len(got) != base+2 {
		t.Fatalf("final view serves %d records, want %d", len(got), base+2)
	}
	for _, rec := range []Record{first, second} {
		if _, ok := got[rec.Seq]; !ok {
			t.Fatalf("seq %d lost; committed writes must survive every cycle", rec.Seq)
		}
	}
}
