package sampleview

import (
	"io"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"sampleview/internal/stats"
)

// buildDiskView stores a view for the real-backend tests and returns its
// path. The view itself is closed; tests reopen it per backend.
func buildDiskView(t *testing.T, recs []Record, seed uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "realio.sv")
	v, err := CreateFromSlice(path, recs, Options{Seed: seed, DiskModel: smallPages()})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBackendStreamEquivalence is the determinism criterion for the
// real-I/O fast path: the same stored view opened through pread, mmap, and
// mmap-with-prefetch — all under the same fault plan — must emit the exact
// same record sequence and charge the exact same simulated time. The
// backends may only change how fast the wall clock moves.
func TestBackendStreamEquivalence(t *testing.T) {
	recs := genRecords(4000, 7)
	q := Box1D(1<<18, 3<<19)
	path := buildDiskView(t, recs, 9)
	plan, err := FaultProfile("flaky-disk", 42)
	if err != nil {
		t.Fatal(err)
	}

	type run struct {
		recs []Record
		st   IOStats
	}
	open := func(backend BackendKind, workers int) run {
		t.Helper()
		v, err := Open(path, Options{
			DiskModel: smallPages(), Faults: plan,
			Backend: backend, PrefetchWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		s, err := v.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var out []Record
		for {
			rec, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("backend %v leaked an error: %v", backend, err)
			}
			out = append(out, rec)
		}
		return run{out, s.Stats()}
	}

	ref := open(BackendPread, 0)
	if len(ref.recs) == 0 {
		t.Fatal("reference stream emitted nothing; test proves nothing")
	}
	if ref.st.Faults.Transient == 0 {
		t.Fatal("fault plan injected nothing; test proves nothing")
	}
	for _, cfg := range []struct {
		name    string
		backend BackendKind
		workers int
	}{
		{"mmap", BackendMmap, 0},
		{"mmap+prefetch", BackendMmap, 4},
		{"pread+prefetch", BackendPread, 4},
	} {
		got := open(cfg.backend, cfg.workers)
		if len(got.recs) != len(ref.recs) {
			t.Fatalf("%s emitted %d records, pread %d", cfg.name, len(got.recs), len(ref.recs))
		}
		for i := range ref.recs {
			if got.recs[i] != ref.recs[i] {
				t.Fatalf("%s record %d differs from pread", cfg.name, i)
			}
		}
		if got.st.SimTime != ref.st.SimTime {
			t.Fatalf("%s charged %v simulated, pread %v", cfg.name, got.st.SimTime, ref.st.SimTime)
		}
		if got.st.Faults != ref.st.Faults {
			t.Fatalf("%s fault counters %+v, pread %+v", cfg.name, got.st.Faults, ref.st.Faults)
		}
	}
}

// TestStreamChurnMidPrefetchRace churns streams over a prefetching mmap
// view under -race: samplers race closers while the async prefetcher warms
// leaves, and the view itself closes with hints still in flight. Nothing
// may panic, deadlock, or leak a worker past Close.
func TestStreamChurnMidPrefetchRace(t *testing.T) {
	recs := genRecords(20_000, 13)
	path := buildDiskView(t, recs, 11)
	q := Box1D(0, 1<<20)

	for round := 0; round < 6; round++ {
		v, err := Open(path, Options{
			DiskModel: smallPages(),
			Backend:   BackendMmap, PrefetchWorkers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for si := 0; si < 3; si++ {
			s, err := v.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						_, err := s.Next()
						if err == io.EOF || err == ErrStreamClosed {
							return
						}
						if err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		// The prefetcher may still be draining hints here; Close must cancel
		// it before releasing the mapping.
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestPrefetchUniformityUnderFaults is the statistical acceptance gate:
// with the mmap backend, async prefetch, and a fault profile all active,
// the k-prefix of a stream must still be a uniform sample of the matching
// records. Each trial rebuilds the view with a fresh construction seed
// (queries are deterministic; the randomness lives in the build).
func TestPrefetchUniformityUnderFaults(t *testing.T) {
	recs := genRecords(2500, 7)
	q := Box1D(1<<18, 3<<19)
	match := matching(recs, q)
	if len(match) < 200 {
		t.Fatalf("only %d matching records; widen the query", len(match))
	}
	plan, err := FaultProfile("flaky-disk", 42)
	if err != nil {
		t.Fatal(err)
	}

	const k, trials = 30, 100
	counts := make(map[uint64]int64)
	var transient int64
	for trial := 0; trial < trials; trial++ {
		path := filepath.Join(t.TempDir(), "trial.sv")
		v, err := CreateFromSlice(path, recs, Options{
			Seed: uint64(1000 + trial), DiskModel: smallPages(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
		rv, err := Open(path, Options{
			DiskModel: smallPages(), Faults: plan,
			Backend: BackendMmap, PrefetchWorkers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := rv.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sample, err := s.Sample(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(sample) != k {
			t.Fatalf("trial %d: sampled %d of %d", trial, len(sample), k)
		}
		for _, rec := range sample {
			if !match[rec.Seq] {
				t.Fatalf("trial %d: non-matching record %d sampled", trial, rec.Seq)
			}
			counts[rec.Seq]++
		}
		transient += s.Stats().Faults.Transient
		s.Close()
		rv.Close()
	}
	if transient == 0 {
		t.Fatal("no faults fired across any trial; profile inactive")
	}

	seqs := make([]uint64, 0, len(match))
	for seq := range match {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	const groups = 25
	grouped := make([]int64, groups)
	for i, seq := range seqs {
		grouped[i%groups] += counts[seq]
	}
	p, err := stats.ChiSquareUniformPValue(grouped)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("prefix not uniform with prefetch+faults: p=%v", p)
	}
}
